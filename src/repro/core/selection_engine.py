"""Fast-path execution engine for adaptive BN candidate selection.

The reference protocol loop (kept as
:meth:`repro.core.adaptive_bn.AdaptiveBNSelection.select_reference`)
re-installs the global weights and the candidate's masks once per
(candidate, client) pair and re-lowers every dev batch from scratch on
every pass, so server-side selection cost scales as
``O(pool x clients)`` full installs *plus* forward sweeps. This engine
restructures the same protocol around three optimizations, each
bit-identical in its outputs (candidate losses, selected index,
comm/FLOP accounting) to the reference loop:

1. **Hoisted candidate installs** — the base global state is installed
   once and frozen into a :class:`~repro.fl.state.FlatStateSnapshot`;
   each candidate is then installed once per candidate (flat memcpy
   restore + one in-place mask multiply with a pre-binarized float
   mask) instead of once per (candidate, client) pair. Stats and loss
   passes never mutate parameters, and BN recalibration resets the
   running statistics it touches, so sweeping all clients on one
   install is byte-identical to reinstalling per client.
2. **Mask-independent lowering cache** — the ``im2col`` lowering of a
   dev batch is a pure relayout of the batch, independent of masks and
   weights, so every layer whose input *is* a dev batch (the stem
   convolution) re-lowers identical bytes for all ``C`` candidates and
   both protocol phases. Each client's dev batches are materialized
   once and registered with an :class:`repro.nn.engine.LoweringCache`,
   which serves memoized lowerings strictly by input identity — deeper
   layers (whose activations depend on the candidate) never hit it.
3. **Executor-parallel client sweeps** — the per-client stats/loss
   passes run through the context's pluggable
   :class:`~repro.fl.executor.ClientExecutor` instead of a hand-rolled
   nested loop: the ``process`` backend broadcasts each candidate once
   through its shared-memory arena (PR 4's packed codec) and fans the
   sweeps out across persistent workers.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..fl.aggregation import aggregate_bn_statistics, normalized_weights
from ..fl.bn import bn_layers
from ..fl.executor import SelectionPass
from ..fl.simulation import FederatedContext
from ..fl.state import FlatStateSnapshot, set_state
from ..nn import engine
from ..pruning.candidate_pool import Candidate
from ..sparse.mask import prunable_parameters
from ..sparse.storage import mask_set_bytes

__all__ = ["CandidateInstaller", "run_fast_selection"]

_LOSS_SCALAR_BYTES = 4

#: Process-wide counter making every candidate's mask token unique, so
#: executor workers never confuse two selections' broadcasts.
_selection_ids = itertools.count()


class CandidateInstaller:
    """Installs candidates into the shared model, once per candidate.

    Captures the post-``set_state`` base model (weights already carrying
    the server masks) into a flat snapshot; ``install`` then restores
    the snapshot with one memcpy and overlays the candidate's masks with
    an in-place multiply against a float32 mask binarized once at
    construction. The resulting model bytes — ``state * server_mask *
    candidate_mask`` with the candidate's masks installed — are
    identical to the reference's per-pair ``masks.apply`` /
    ``set_state`` / ``masks.apply`` round-trip.

    Assumes every candidate masks the same parameter set (the pool
    generator's invariant): parameters outside it keep the server masks
    installed by the preamble for the whole selection.
    """

    def __init__(
        self, ctx: FederatedContext, candidates: list[Candidate]
    ) -> None:
        self.ctx = ctx
        model = ctx.model
        # The reference preamble, run once: server masks + global state.
        ctx.server.masks.apply(model)
        set_state(model, ctx.server.state)
        self._snapshot = FlatStateSnapshot()
        self._snapshot.capture(model)
        params = dict(prunable_parameters(model))
        self._entries: list[list[tuple[object, np.ndarray]]] = []
        for candidate in candidates:
            entries = []
            for name, mask in candidate.masks.items():
                param = params.get(name)
                if param is None:
                    raise KeyError(
                        f"candidate masks unknown parameter {name!r}"
                    )
                mask = np.asarray(mask)
                if mask.shape != param.shape:
                    raise ValueError(
                        f"mask shape {mask.shape} does not match "
                        f"parameter shape {param.shape} for {name!r}"
                    )
                entries.append((param, mask))
            self._entries.append(entries)

    def install(self, index: int) -> None:
        """Restore the base state and overlay candidate ``index``.

        Masks are binarized on the fly — two conversions per candidate
        over the whole selection (one per protocol phase), negligible
        against the forward sweeps and O(one model) peak memory, versus
        pinning a float copy of every candidate's masks at once.
        """
        self._snapshot.restore(self.ctx.model)
        for param, mask in self._entries[index]:
            float_mask = (mask != 0).astype(np.float32)
            param.mask = float_mask
            np.multiply(param.data, float_mask, out=param.data)
            param.bump_version()


def run_fast_selection(
    selector, ctx: FederatedContext, candidates: list[Candidate]
):
    """Execute Algorithm 1 through the fast path.

    ``selector`` is the owning
    :class:`~repro.core.adaptive_bn.AdaptiveBNSelection` (supplies the
    protocol knobs and the FLOP model). Returns the selected candidate
    and a :class:`~repro.core.adaptive_bn.SelectionReport` whose
    candidate losses, selected index, and comm/FLOP tallies are
    byte-identical to :meth:`select_reference` on the same context.
    """
    from .adaptive_bn import SelectionReport

    if not candidates:
        raise ValueError("candidate pool is empty")
    clients = ctx.clients
    dev_counts = [client.num_dev_samples for client in clients]
    weights = normalized_weights(dev_counts)
    # repro-lint: allow[float-accumulation] -- integer feature counts;
    # exact and order-independent in any summation order.
    bn_param_count = sum(
        layer.num_features for _, layer in bn_layers(ctx.model)
    )
    download_bytes = 0
    upload_bytes = 0
    flops_per_device = 0.0
    num_clients = len(clients)

    installer = CandidateInstaller(ctx, candidates)
    lowering = engine.LoweringCache()
    batch_size = selector.batch_size
    for client in clients:
        for index, (images, _) in enumerate(client.dev_batches(batch_size)):
            lowering.register_source(
                images, (client.client_id, batch_size, index)
            )
    tokens = [
        ("selection", next(_selection_ids), candidate.index)
        for candidate in candidates
    ]

    aggregated_stats: list[dict | None] = []
    if selector.use_bn_recalibration:
        for position, candidate in enumerate(candidates):
            candidate_bytes = mask_set_bytes(candidate.masks)
            installer.install(position)
            sweep = SelectionPass(
                kind="bn_stats",
                batch_size=batch_size,
                mask_token=tokens[position],
                masks=candidate.masks,
            )
            with engine.lowering_cache(lowering):
                per_client_stats = ctx.executor.run_selection(
                    ctx, clients, sweep
                )
            download_bytes += candidate_bytes * num_clients
            upload_bytes += 2 * bn_param_count * 4 * num_clients
            aggregated_stats.append(
                aggregate_bn_statistics(per_client_stats, dev_counts)
            )
            flops_per_device += selector._stats_pass_flops(ctx, candidate)
    else:
        aggregated_stats = [None] * len(candidates)
        download_bytes += (
            # repro-lint: allow[float-accumulation] -- integer byte
            # sizes; exact and order-independent in any summation order.
            sum(mask_set_bytes(c.masks) for c in candidates) * num_clients
        )

    candidate_losses = []
    for position, (candidate, stats) in enumerate(
        zip(candidates, aggregated_stats)
    ):
        installer.install(position)
        sweep = SelectionPass(
            kind="dev_loss",
            batch_size=batch_size,
            mask_token=tokens[position],
            masks=candidate.masks,
            bn_stats=stats,
        )
        with engine.lowering_cache(lowering):
            losses = ctx.executor.run_selection(ctx, clients, sweep)
        if stats is not None:
            download_bytes += 2 * bn_param_count * 4 * num_clients
        upload_bytes += _LOSS_SCALAR_BYTES * num_clients
        candidate_losses.append(float(np.dot(weights, losses)))
        flops_per_device += selector._stats_pass_flops(ctx, candidate)

    selected_index = int(np.argmin(candidate_losses))
    ctx.comm.record_download(download_bytes, phase="selection")
    ctx.comm.record_upload(upload_bytes, phase="selection")
    report = SelectionReport(
        selected_index=selected_index,
        candidate_losses=candidate_losses,
        comm_bytes=download_bytes + upload_bytes,
        download_bytes=download_bytes,
        upload_bytes=upload_bytes,
        flops_per_device=flops_per_device,
        pool_size=len(candidates),
        used_bn_recalibration=selector.use_bn_recalibration,
        metadata={
            "engine": "fast",
            "lowering_cache_hits": lowering.hits,
            "lowering_cache_misses": lowering.misses,
        },
    )
    # Leave the model in its server state (selection must not leak
    # candidate masks or statistics into the global model).
    ctx.server.load_into_model()
    return candidates[selected_index], report
