"""Adaptive batch-normalization selection (paper Algorithm 1).

The server holds a pool of coarse-pruned candidate structures. Devices
recalibrate each candidate's BN statistics on their local development
data (a cheap stats-only forward pass — no training), the server
aggregates the statistics sample-weighted (Eq. 4), devices then score
the recalibrated candidates by local loss, and the server keeps the
candidate with the lowest weighted loss.

``use_bn_recalibration=False`` gives the *vanilla selection* baseline of
the paper's ablation (Fig. 4): devices score the raw candidates without
the BN update, which is exactly the pre-fine-tuning selection that the
paper shows picks biased structures.

:meth:`AdaptiveBNSelection.select` runs the protocol through the fast
execution engine (:mod:`repro.core.selection_engine`): candidates are
installed once per candidate instead of once per (candidate, client)
pair, dev-batch lowerings are memoized across candidates, and the
per-client sweeps run through the context's pluggable executor. The
original nested loop is kept as :meth:`select_reference` — the fast
path is bit-identical to it in every report field, which the
equivalence suite asserts.

Selection traffic is accounted by direction: candidate masks and
aggregated statistics are *downloads*, per-device BN statistics and
scalar losses are *uploads*, both recorded under the ``"selection"``
phase of the context's :class:`~repro.fl.comm.CommTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fl.aggregation import aggregate_bn_statistics, normalized_weights
from ..fl.bn import bn_layers, set_bn_statistics
from ..fl.simulation import FederatedContext
from ..metrics.flops import forward_flops
from ..pruning.candidate_pool import Candidate
from ..sparse.storage import mask_set_bytes

__all__ = ["SelectionReport", "AdaptiveBNSelection"]

_LOSS_SCALAR_BYTES = 4


@dataclass
class SelectionReport:
    """Cost and outcome bookkeeping of one selection pass."""

    selected_index: int
    candidate_losses: list[float]
    comm_bytes: int = 0
    download_bytes: int = 0
    upload_bytes: int = 0
    flops_per_device: float = 0.0
    pool_size: int = 0
    used_bn_recalibration: bool = True
    metadata: dict = field(default_factory=dict)


class AdaptiveBNSelection:
    """Selects the least-biased coarse-pruned candidate (Algorithm 1)."""

    def __init__(
        self,
        use_bn_recalibration: bool = True,
        batch_size: int = 64,
        fast_path: bool = True,
    ) -> None:
        self.use_bn_recalibration = use_bn_recalibration
        self.batch_size = batch_size
        self.fast_path = fast_path

    def select(
        self, ctx: FederatedContext, candidates: list[Candidate]
    ) -> tuple[Candidate, SelectionReport]:
        """Run the full device/server selection protocol."""
        if not candidates:
            raise ValueError("candidate pool is empty")
        if self.fast_path:
            from .selection_engine import run_fast_selection

            return run_fast_selection(self, ctx, candidates)
        return self.select_reference(ctx, candidates)

    def select_reference(
        self, ctx: FederatedContext, candidates: list[Candidate]
    ) -> tuple[Candidate, SelectionReport]:
        """The reference per-(candidate, client) protocol loop.

        Kept as the bit-identity oracle for the fast path (and as the
        pre-change baseline the candidate-selection benchmark measures
        against).
        """
        if not candidates:
            raise ValueError("candidate pool is empty")
        dev_counts = [client.num_dev_samples for client in ctx.clients]
        weights = normalized_weights(dev_counts)
        bn_param_count = sum(
            layer.num_features for _, layer in bn_layers(ctx.model)
        )
        download_bytes = 0
        upload_bytes = 0
        flops_per_device = 0.0

        aggregated_stats = []
        if self.use_bn_recalibration:
            for candidate in candidates:
                # Devices fetch the candidate (sparse) and report local
                # BN statistics from stats-only forward passes.
                candidate_bytes = mask_set_bytes(candidate.masks)
                per_client_stats = []
                for client in ctx.clients:
                    self._install_candidate(ctx, candidate)
                    per_client_stats.append(
                        client.recalibrate_bn(ctx.model, self.batch_size)
                    )
                    download_bytes += candidate_bytes
                    upload_bytes += 2 * bn_param_count * 4  # mean+var
                aggregated_stats.append(
                    aggregate_bn_statistics(per_client_stats, dev_counts)
                )
                flops_per_device += self._stats_pass_flops(ctx, candidate)
        else:
            aggregated_stats = [None] * len(candidates)
            download_bytes += (
                sum(mask_set_bytes(c.masks) for c in candidates)
                * len(ctx.clients)
            )

        candidate_losses = []
        for candidate, stats in zip(candidates, aggregated_stats):
            losses = []
            for client in ctx.clients:
                self._install_candidate(ctx, candidate)
                if stats is not None:
                    set_bn_statistics(ctx.model, stats)
                    download_bytes += 2 * bn_param_count * 4  # stats
                losses.append(
                    client.evaluate_candidate_loss(ctx.model, self.batch_size)
                )
                upload_bytes += _LOSS_SCALAR_BYTES  # scalar loss
            candidate_losses.append(float(np.dot(weights, losses)))
            flops_per_device += self._stats_pass_flops(ctx, candidate)

        selected_index = int(np.argmin(candidate_losses))
        ctx.comm.record_download(download_bytes, phase="selection")
        ctx.comm.record_upload(upload_bytes, phase="selection")
        report = SelectionReport(
            selected_index=selected_index,
            candidate_losses=candidate_losses,
            comm_bytes=download_bytes + upload_bytes,
            download_bytes=download_bytes,
            upload_bytes=upload_bytes,
            flops_per_device=flops_per_device,
            pool_size=len(candidates),
            used_bn_recalibration=self.use_bn_recalibration,
            metadata={"engine": "reference"},
        )
        # Leave the model in its server state (selection must not leak
        # candidate masks or statistics into the global model).
        ctx.server.load_into_model()
        return candidates[selected_index], report

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _install_candidate(
        self, ctx: FederatedContext, candidate: Candidate
    ) -> None:
        """Load global weights and overlay the candidate's mask."""
        ctx.server.masks.apply(ctx.model)  # restore dense/base masks first
        from ..fl.state import set_state  # local import to avoid cycle

        set_state(ctx.model, ctx.server.state)
        candidate.masks.apply(ctx.model)

    def _stats_pass_flops(
        self, ctx: FederatedContext, candidate: Candidate
    ) -> float:
        """FLOPs of one dev-dataset forward sweep for one candidate."""
        per_sample = forward_flops(ctx.profile, candidate.masks)
        mean_dev = float(
            np.mean([client.num_dev_samples for client in ctx.clients])
        )
        return per_sample * mean_dev
