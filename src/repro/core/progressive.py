"""Progressive pruning (paper Algorithm 2).

Every ``delta_rounds`` rounds (until round ``stop_round``) the server
adjusts the mask of one group of layers — a block by default, iterated
backward from the output (paper Section IV-E):

1. each device computes the top-``a_t^l`` gradient magnitudes of the
   *pruned* parameters for each layer in the group, using an O(a_t^l)
   streaming buffer (Eq. 6);
2. the server averages the sparse reports sample-weighted (Eq. 7);
3. the server *grows* the ``a_t^l`` pruned positions with the largest
   aggregated gradient magnitude and *prunes* the ``a_t^l`` active
   positions with the smallest weight magnitude (excluding the
   just-grown ones), keeping the density exactly constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fl.aggregation import aggregate_sparse_gradients
from ..fl.simulation import FederatedContext
from ..fl.state import set_state
from ..pruning.schedule import PruningSchedule
from ..sparse.mask import MaskSet

__all__ = ["AdjustmentReport", "ProgressivePruner"]


@dataclass
class AdjustmentReport:
    """Outcome of one grow/prune adjustment."""

    round_index: int
    layer_counts: dict[str, int]
    grown: dict[str, np.ndarray] = field(default_factory=dict)
    dropped: dict[str, np.ndarray] = field(default_factory=dict)
    upload_bytes: int = 0
    max_buffer_entries: int = 0

    @property
    def total_adjusted(self) -> int:
        return sum(self.layer_counts.values())


class ProgressivePruner:
    """Server-side driver of the grow/prune schedule."""

    def __init__(
        self,
        schedule: PruningSchedule,
        blocks: list[list[str]],
        protected: frozenset[str] = frozenset(),
        grad_batch_size: int = 64,
    ) -> None:
        if not blocks or not any(blocks):
            raise ValueError("block partition is empty")
        self.schedule = schedule
        self.blocks = [
            [name for name in block if name not in protected]
            for block in blocks
        ]
        self.blocks = [block for block in self.blocks if block]
        if not self.blocks:
            raise ValueError("all blocks were protected from pruning")
        self.grad_batch_size = grad_batch_size
        self._pruning_rounds_done = 0
        self.max_buffer_entries_seen = 0

    # ------------------------------------------------------------------
    # Round hook
    # ------------------------------------------------------------------
    def maybe_adjust(
        self,
        ctx: FederatedContext,
        round_index: int,
        client_states: list[dict[str, np.ndarray]],
    ) -> AdjustmentReport | None:
        """Run one adjustment if the schedule says so.

        ``client_states`` are the post-local-training device states of
        this round: the paper's devices compute their gradient reports
        on their own local model before the server aggregates.
        """
        if not self.schedule.is_pruning_round(round_index):
            return None
        group = self.schedule.group_for_pruning_round(
            self._pruning_rounds_done, self.blocks
        )
        masks = ctx.server.masks
        layer_counts: dict[str, int] = {}
        for name in group:
            active = masks.layer_active(name)
            pruned = masks[name].size - active
            count = self.schedule.adjustment_count(round_index, 1, active)
            count = min(count, pruned, active)
            if count > 0:
                layer_counts[name] = count
        self._pruning_rounds_done += 1
        if not layer_counts:
            return AdjustmentReport(round_index, {})

        report = self._collect_and_apply(
            ctx, round_index, layer_counts, client_states
        )
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _collect_and_apply(
        self,
        ctx: FederatedContext,
        round_index: int,
        layer_counts: dict[str, int],
        client_states: list[dict[str, np.ndarray]],
    ) -> AdjustmentReport:
        # Device side: sparse top-K gradient reports (Eq. 6) from the
        # devices that trained this round.
        participants = ctx.last_participants
        per_device = []
        upload_bytes = 0
        for client, state in zip(participants, client_states):
            set_state(ctx.model, state)
            grads = client.compute_topk_pruned_gradients(
                ctx.model, layer_counts, self.grad_batch_size
            )
            per_device.append(grads)
            upload_bytes += sum(
                8 * len(indices) for indices, _ in grads.values()
            )
        ctx.comm.record_upload(upload_bytes, phase="pruning")
        self.max_buffer_entries_seen = max(
            self.max_buffer_entries_seen, max(layer_counts.values())
        )

        # Server side: aggregate (Eq. 7) and adjust the mask.
        aggregated = aggregate_sparse_gradients(
            per_device, [c.num_samples for c in participants]
        )
        new_masks, grown, dropped = self.adjust_masks(
            ctx.server.masks, ctx.server.state, layer_counts, aggregated
        )
        ctx.server.set_masks(new_masks)
        report = AdjustmentReport(
            round_index=round_index,
            layer_counts=layer_counts,
            grown=grown,
            dropped=dropped,
            upload_bytes=upload_bytes,
            max_buffer_entries=max(layer_counts.values()),
        )
        return report

    @staticmethod
    def adjust_masks(
        masks: MaskSet,
        global_state: dict[str, np.ndarray],
        layer_counts: dict[str, int],
        aggregated_grads: dict[str, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[MaskSet, dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Grow/prune each layer's mask, preserving its active count."""
        new_masks = masks.copy()
        grown_indices: dict[str, np.ndarray] = {}
        dropped_indices: dict[str, np.ndarray] = {}
        for name, count in layer_counts.items():
            mask_flat = new_masks[name].reshape(-1).copy()
            weights_flat = global_state[name].reshape(-1)

            # Grow: pruned indices with the largest aggregated |grad|.
            if name in aggregated_grads:
                idx, values = aggregated_grads[name]
                order = np.argsort(-np.abs(values), kind="stable")
                candidates = idx[order]
                # Only genuinely pruned positions are eligible.
                eligible = candidates[~mask_flat[candidates]]
                grow = eligible[:count]
            else:
                grow = np.empty(0, dtype=np.int64)

            # Drop: active positions with the smallest |weight|,
            # excluding the ones just grown (they are not active yet).
            active_idx = np.flatnonzero(mask_flat)
            drop_count = len(grow)
            if drop_count > 0:
                magnitudes = np.abs(weights_flat[active_idx])
                order = np.argsort(magnitudes, kind="stable")
                drop = active_idx[order[:drop_count]]
            else:
                drop = np.empty(0, dtype=np.int64)

            mask_flat[grow] = True
            mask_flat[drop] = False
            new_masks[name] = mask_flat.reshape(new_masks[name].shape)
            grown_indices[name] = grow
            dropped_indices[name] = drop
        return new_masks, grown_indices, dropped_indices
