"""FedTiny core: adaptive BN selection + progressive pruning."""

from .adaptive_bn import AdaptiveBNSelection, SelectionReport
from .fedtiny import FedTiny, FedTinyConfig, optimal_pool_size
from .progressive import AdjustmentReport, ProgressivePruner

__all__ = [
    "AdaptiveBNSelection",
    "AdjustmentReport",
    "FedTiny",
    "FedTinyConfig",
    "ProgressivePruner",
    "SelectionReport",
    "optimal_pool_size",
]
