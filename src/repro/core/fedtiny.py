"""The FedTiny orchestrator: coarse prune, select, progressively prune.

Ties the paper's pipeline together (Fig. 1 right):

1. the server pretrains on its public one-shot dataset and builds a
   pool of coarse-pruned candidates (magnitude pruning with noisy
   layer-wise rates, Section IV-A2);
2. the adaptive BN selection module picks the least-biased candidate
   (Algorithm 1);
3. federated sparse training runs, with the progressive pruning module
   adjusting one block of layers every few rounds (Algorithm 2).

The two module switches (``use_adaptive_bn``, ``use_progressive``)
yield the four ablation arms of the paper's Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..data.dataset import Dataset
from ..fl.simulation import FederatedContext
from ..fl.state import get_state
from ..fl.training import server_pretrain
from ..methods import FederatedMethod
from ..metrics.flops import training_flops_per_sample
from ..metrics.memory import device_memory_footprint
from ..metrics.tracker import RunResult
from ..pruning.blocks import model_blocks
from ..pruning.candidate_pool import generate_candidate_pool
from ..pruning.protection import resolve_protected_layers
from ..pruning.schedule import PruningSchedule
from .adaptive_bn import AdaptiveBNSelection
from .progressive import ProgressivePruner

__all__ = ["FedTinyConfig", "FedTiny", "optimal_pool_size"]

_MAX_DEFAULT_POOL = 50


def optimal_pool_size(target_density: float) -> int:
    """The paper's C* = 0.1 / d_target rule (Section IV-D), clamped."""
    if not 0.0 < target_density <= 1.0:
        raise ValueError(
            f"target_density must be in (0, 1], got {target_density}"
        )
    return int(min(_MAX_DEFAULT_POOL, max(1, round(0.1 / target_density))))


@dataclass(frozen=True)
class FedTinyConfig:
    """All FedTiny knobs with the paper's defaults."""

    target_density: float = 0.01
    pool_size: int | None = None  # None -> optimal_pool_size(d)
    pool_noise: float = 0.9
    use_adaptive_bn: bool = True
    use_progressive: bool = True
    schedule: PruningSchedule = field(default_factory=PruningSchedule)
    pretrain_epochs: int = 2
    protect_io: bool = True
    selection_batch_size: int = 64
    grad_batch_size: int = 64
    pool_seed: int = 17

    def __post_init__(self) -> None:
        if not 0.0 < self.target_density <= 1.0:
            raise ValueError(
                f"target_density must be in (0, 1], got {self.target_density}"
            )
        if self.pool_size is not None and self.pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {self.pool_size}")

    def with_ablation(
        self, use_adaptive_bn: bool, use_progressive: bool
    ) -> "FedTinyConfig":
        """Copy of this config with the two module switches set."""
        return replace(
            self,
            use_adaptive_bn=use_adaptive_bn,
            use_progressive=use_progressive,
        )


class FedTiny(FederatedMethod):
    """Runs the full FedTiny protocol on a federated context.

    The shared :meth:`FederatedMethod.run` loop drives the lifecycle:
    :meth:`setup` covers pretraining, the coarse-pruned candidate pool
    and adaptive BN selection; :meth:`round_hook` is the progressive
    pruning module; :meth:`finalize` the cost accounting.
    """

    def __init__(self, config: FedTinyConfig) -> None:
        self.config = config

    @property
    def method_name(self) -> str:
        cfg = self.config
        if cfg.use_adaptive_bn and cfg.use_progressive:
            return "fedtiny"
        if cfg.use_adaptive_bn:
            return "adaptive_bn_only"
        if cfg.use_progressive:
            return "vanilla+progressive"
        return "vanilla"

    @property
    def target_density(self) -> float:
        return self.config.target_density

    @property
    def needs_round_states(self) -> bool:
        # Only the progressive pruning hook inspects the round's
        # uploads; the ablations without it can keep uploads packed.
        return self.config.use_progressive

    def setup(self, ctx: FederatedContext, public_data: Dataset) -> None:
        """Pretrain, build the candidate pool, and select a mask."""
        cfg = self.config

        # 1. Server-side pretraining on the public one-shot dataset.
        server_pretrain(
            ctx.model,
            public_data,
            epochs=cfg.pretrain_epochs,
            batch_size=ctx.config.batch_size,
            lr=ctx.config.lr,
            seed=ctx.config.seed,
        )
        ctx.server.commit_state(get_state(ctx.model))

        # 2. Coarse-pruned candidate pool.
        protected = resolve_protected_layers(
            ctx.model, cfg.target_density, cfg.protect_io
        )
        pool_size = (
            cfg.pool_size
            if cfg.pool_size is not None
            else optimal_pool_size(cfg.target_density)
        )
        pool = generate_candidate_pool(
            ctx.model,
            cfg.target_density,
            pool_size,
            np.random.default_rng(cfg.pool_seed),
            noise=cfg.pool_noise,
            protected=protected,
        )

        # 3. Candidate selection (adaptive BN or vanilla).
        selector = AdaptiveBNSelection(
            use_bn_recalibration=cfg.use_adaptive_bn,
            batch_size=cfg.selection_batch_size,
        )
        chosen, selection = selector.select(ctx, pool)
        ctx.install_masks(chosen.masks.copy())
        # Selection traffic is a one-off accounted on the result itself,
        # not in the per-round training deltas.
        ctx.sync_comm_baseline()
        self._selection = selection
        self._protected = protected

        # 4. The progressive pruning module driven by round_hook.
        self._pruner = ProgressivePruner(
            cfg.schedule,
            model_blocks(ctx.model),
            protected=protected,
            grad_batch_size=cfg.grad_batch_size,
        )

    def checkpoint_state(self) -> dict:
        # The pruner is the method's only cross-round mutable state:
        # how far the progressive schedule has advanced, and the
        # largest top-k buffer the memory accounting has seen.
        return {
            "pruning_rounds_done": self._pruner._pruning_rounds_done,
            "max_buffer_entries_seen":
                self._pruner.max_buffer_entries_seen,
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        if not state:
            return
        self._pruner._pruning_rounds_done = int(
            state["pruning_rounds_done"]
        )
        self._pruner.max_buffer_entries_seen = int(
            state["max_buffer_entries_seen"]
        )

    def round_hook(
        self, round_index: int, states: list[dict[str, np.ndarray]]
    ) -> float:
        """Progressively adjust one block of layers when scheduled."""
        cfg = self.config
        if not cfg.use_progressive:
            return 0.0
        ctx = self.ctx
        adjustment = self._pruner.maybe_adjust(ctx, round_index, states)
        if adjustment is not None and adjustment.layer_counts:
            return training_flops_per_sample(
                ctx.profile,
                ctx.server.masks,
                dense_grad_layers=set(adjustment.layer_counts),
            ) * min(cfg.grad_batch_size, max(ctx.sample_counts))
        return 0.0

    def finalize(self, result: RunResult, ctx: FederatedContext) -> None:
        """Selection report + final cost accounting."""
        selection = self._selection
        result.selection_comm_bytes = selection.comm_bytes
        result.selection_flops = selection.flops_per_device
        result.metadata.update(
            selected_candidate=selection.selected_index,
            pool_size=selection.pool_size,
            protected_layers=sorted(self._protected),
            candidate_losses=selection.candidate_losses,
        )
        footprint = device_memory_footprint(
            ctx.model,
            ctx.server.masks,
            topk_buffer_entries=self._pruner.max_buffer_entries_seen,
        )
        result.memory_footprint_bytes = footprint.total_bytes
        result.metadata["final_layer_densities"] = (
            ctx.server.masks.layer_densities()
        )
