"""Density x shape micro-benchmarks of the sparsity-aware engine.

Measures one training step (forward + backward) of ``Conv2d`` and
``Linear`` against a *legacy* reference that reproduces the pre-engine
substrate exactly: double-loop ``im2col_reference``/``col2im_reference``
lowering and an effective weight re-materialized as ``data * mask`` on
every forward. Three engine variants are timed per density:

``engine``
    The shipped training configuration — cached effective weights,
    stride-tricks lowering, density dispatch, and
    :func:`repro.nn.engine.masked_weight_grads` (fully-pruned-row weight
    gradients skipped, exactly as local SGD runs).
``engine_growth_signal``
    Same, but with dense weight gradients everywhere (the configuration
    growth-signal collection uses).
``legacy``
    The pre-engine path at the same density.

Masks are output-channel structured (:func:`repro.sparse.mask.structured_row_mask`)
so the density dispatch has rows to drop — the regime the paper's
Fig. 3 / Table 5 density sweeps study. Results are machine-readable and
consumed by ``repro bench``, the CI benchmark job, and the README
performance table.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn import engine
from ..nn import functional as F
from ..nn.layers import Conv2d, Linear
from ..sparse.mask import structured_row_mask

__all__ = [
    "CONV_SHAPES",
    "LINEAR_SHAPES",
    "DENSITIES",
    "run_sparse_compute_bench",
    "write_bench_json",
]


@dataclass(frozen=True)
class ConvShape:
    name: str
    batch: int
    in_channels: int
    height: int
    width: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 1


@dataclass(frozen=True)
class LinearShape:
    name: str
    batch: int
    in_features: int
    out_features: int


#: The grid spans the three regimes of the im2col convolution:
#: matmul-bound (many output channels — density dispatch dominates),
#: lowering-bound (few output channels — the vectorized im2col/col2im
#: rewrite dominates), and pointwise (1x1 — lowering is free, the sparse
#: path is pure batched matmuls).
CONV_SHAPES = (
    ConvShape("conv_matmul_bound", 8, 64, 16, 16, 128, 3),
    ConvShape("conv_lowering_bound", 4, 64, 16, 16, 16, 3),
    ConvShape("conv_pointwise", 8, 256, 8, 8, 256, 1, 1, 0),
    ConvShape("conv_block", 16, 16, 16, 16, 32, 3),
)

LINEAR_SHAPES = (
    LinearShape("linear_wide", 256, 1024, 512),
    LinearShape("linear_head", 128, 512, 128),
)

DENSITIES = (1.0, 0.5, 0.25, 0.1, 0.05)


# ----------------------------------------------------------------------
# Legacy (pre-engine) reference steps
# ----------------------------------------------------------------------
def _legacy_conv_step(x, data, mask, bias, grad_out, stride, pad):
    n, c, h, w = x.shape
    c_out, _, k, _ = data.shape
    out_h = F.conv_output_size(h, k, stride, pad)
    out_w = F.conv_output_size(w, k, stride, pad)
    effective = data if mask is None else data * mask
    col = F.im2col_reference(x, k, k, stride, pad)
    w_eff = effective.reshape(c_out, -1)
    out = col @ w_eff.T
    if bias is not None:
        out += bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)
    grad_w = (grad_flat.T @ col).reshape(data.shape)
    effective = data if mask is None else data * mask
    grad_col = grad_flat @ effective.reshape(c_out, -1)
    grad_in = F.col2im_reference(grad_col, x.shape, k, k, stride, pad)
    return out, grad_w, grad_in


def _legacy_linear_step(x, data, mask, bias, grad_out):
    effective = data if mask is None else data * mask
    out = x @ effective.T
    if bias is not None:
        out += bias
    grad_w = grad_out.T @ x
    effective = data if mask is None else data * mask
    grad_in = grad_out @ effective
    return out, grad_w, grad_in


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def _time_variants(
    steps: dict[str, callable], repeats: int, min_time: float = 0.02
) -> dict[str, float]:
    """Median CPU-seconds per call for every variant, interleaved.

    The substrate is single-threaded NumPy, so ``process_time`` measures
    the same work as wall clock while being immune to scheduler noise.
    Variants are sampled round-robin (A, B, C, A, B, C, ...) so that
    machine-wide throughput drift hits every variant equally — the
    ratios between variants stay honest even on noisy shared hosts.
    """
    inners = {}
    for name, step in steps.items():
        step()  # warmup
        t0 = time.process_time()
        step()
        once = max(time.process_time() - t0, 1e-7)
        inners[name] = max(1, int(min_time / once))
    samples: dict[str, list[float]] = {name: [] for name in steps}
    for _ in range(repeats):
        for name, step in steps.items():
            inner = inners[name]
            t0 = time.process_time()
            for _ in range(inner):
                step()
            samples[name].append((time.process_time() - t0) / inner)
    return {
        name: float(np.median(values)) for name, values in samples.items()
    }


def _conv_cases(shape: ConvShape, density: float, rng: np.random.Generator):
    x = rng.normal(
        size=(shape.batch, shape.in_channels, shape.height, shape.width)
    ).astype(np.float32)
    out_h = F.conv_output_size(
        shape.height, shape.kernel, shape.stride, shape.padding
    )
    out_w = F.conv_output_size(
        shape.width, shape.kernel, shape.stride, shape.padding
    )
    grad_out = rng.normal(
        size=(shape.batch, shape.out_channels, out_h, out_w)
    ).astype(np.float32)

    conv = Conv2d(
        shape.in_channels,
        shape.out_channels,
        shape.kernel,
        stride=shape.stride,
        padding=shape.padding,
        rng=np.random.default_rng(1),
    )
    mask = None
    if density < 1.0:
        mask = structured_row_mask(
            conv.weight.shape, density, np.random.default_rng(2)
        )
        conv.weight.set_mask(mask)
        conv.weight.apply_mask()
        mask = conv.weight.mask  # float32 binarized copy

    data = conv.weight.data.copy()
    bias = conv.bias.data.copy()

    def legacy_step():
        _legacy_conv_step(
            x, data, mask, bias, grad_out, shape.stride, shape.padding
        )

    def engine_step():
        out = conv(x)
        conv.zero_grad()
        conv.backward(grad_out)
        return out

    return legacy_step, engine_step


def _linear_cases(shape: LinearShape, density: float, rng: np.random.Generator):
    x = rng.normal(size=(shape.batch, shape.in_features)).astype(np.float32)
    grad_out = rng.normal(
        size=(shape.batch, shape.out_features)
    ).astype(np.float32)

    layer = Linear(
        shape.in_features, shape.out_features, rng=np.random.default_rng(1)
    )
    mask = None
    if density < 1.0:
        mask = structured_row_mask(
            layer.weight.shape, density, np.random.default_rng(2)
        )
        layer.weight.set_mask(mask)
        layer.weight.apply_mask()
        mask = layer.weight.mask

    data = layer.weight.data.copy()
    bias = layer.bias.data.copy()

    def legacy_step():
        _legacy_linear_step(x, data, mask, bias, grad_out)

    def engine_step():
        layer(x)
        layer.zero_grad()
        layer.backward(grad_out)

    return legacy_step, engine_step


def _measure_case(kind, shape, density, cases, repeats, results):
    legacy_step, engine_step = cases

    saved = engine.get_config().density_threshold
    engine.configure(density_threshold=1.0)
    try:
        def engine_masked():
            with engine.masked_weight_grads():
                engine_step()

        times = _time_variants(
            {
                "legacy": legacy_step,
                "engine": engine_masked,
                "engine_growth_signal": engine_step,
            },
            repeats,
        )
    finally:
        engine.configure(density_threshold=saved)

    base = {
        "kind": kind,
        "shape": shape.name,
        "dims": vars(shape),
        "density": density,
    }
    for variant, seconds in times.items():
        results.append({**base, "variant": variant, "seconds": seconds})


def run_sparse_compute_bench(
    repeats: int = 5,
    densities: tuple[float, ...] = DENSITIES,
    quick: bool = False,
) -> dict:
    """Run the density x shape grid; returns a JSON-serializable record.

    ``quick`` shrinks the grid for CI smoke runs but keeps every conv
    regime, so the acceptance maxima stay comparable to full-grid
    records (the regression gate compares them against a checked-in
    baseline).
    """
    conv_shapes = (
        tuple(s for s in CONV_SHAPES if s.name != "conv_block")
        if quick
        else CONV_SHAPES
    )
    linear_shapes = LINEAR_SHAPES[:1] if quick else LINEAR_SHAPES
    if quick:
        densities = tuple(d for d in densities if d in (1.0, 0.5, 0.1))

    rng = np.random.default_rng(0)
    results: list[dict] = []
    for shape in conv_shapes:
        for density in densities:
            _measure_case(
                "conv",
                shape,
                density,
                _conv_cases(shape, density, rng),
                repeats,
                results,
            )
    for shape in linear_shapes:
        for density in densities:
            _measure_case(
                "linear",
                shape,
                density,
                _linear_cases(shape, density, rng),
                repeats,
                results,
            )

    record = {
        "schema": "bench_sparse_compute/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {
            "repeats": repeats,
            "densities": list(densities),
            "quick": quick,
        },
        "results": results,
        "summary": _summarize(results),
    }
    return record


def _summarize(results: list[dict]) -> dict:
    by_key: dict[tuple, float] = {
        (r["kind"], r["shape"], r["density"], r["variant"]): r["seconds"]
        for r in results
    }
    shapes = sorted({(r["kind"], r["shape"]) for r in results})
    densities = sorted({r["density"] for r in results})
    per_shape: dict[str, dict] = {}
    for kind, shape in shapes:
        legacy_dense = by_key.get((kind, shape, 1.0, "legacy"))
        entry: dict = {"kind": kind}
        if legacy_dense:
            engine_dense = by_key.get((kind, shape, 1.0, "engine"))
            if engine_dense:
                entry["dense_lowering_speedup"] = legacy_dense / engine_dense
            for density in densities:
                engine_s = by_key.get((kind, shape, density, "engine"))
                if engine_s and density < 1.0:
                    entry[f"speedup_at_{density:g}"] = (
                        legacy_dense / engine_s
                    )
        per_shape[shape] = entry

    conv_entries = [e for e in per_shape.values() if e["kind"] == "conv"]
    acceptance = {}
    dense_speedups = [
        e["dense_lowering_speedup"]
        for e in conv_entries
        if "dense_lowering_speedup" in e
    ]
    sparse_speedups = [
        e["speedup_at_0.1"] for e in conv_entries if "speedup_at_0.1" in e
    ]
    if dense_speedups:
        acceptance["max_conv_dense_lowering_speedup"] = max(dense_speedups)
    if sparse_speedups:
        acceptance["max_conv_speedup_at_0.1"] = max(sparse_speedups)
    return {"per_shape": per_shape, "acceptance": acceptance}


def write_bench_json(record: dict, path: str | Path) -> Path:
    """Write the benchmark record to ``path`` (creating parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path
