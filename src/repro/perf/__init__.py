"""Performance measurement harnesses for the compute substrate."""

from .sparse_compute import run_sparse_compute_bench, write_bench_json

__all__ = ["run_sparse_compute_bench", "write_bench_json"]
