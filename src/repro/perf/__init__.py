"""Performance measurement harnesses for the compute substrate."""

from .candidate_selection import run_candidate_selection_bench
from .fleet_scale import run_fleet_scale_bench
from .round_loop import run_round_loop_bench
from .sparse_compute import run_sparse_compute_bench, write_bench_json

__all__ = [
    "run_candidate_selection_bench",
    "run_fleet_scale_bench",
    "run_round_loop_bench",
    "run_sparse_compute_bench",
    "write_bench_json",
]
