"""Population-scale benchmarks of the virtual client fleet.

The materialized simulation builds every client up front, so memory
and setup cost are O(population) and runs cap out at a few hundred
devices. The virtual backend keeps clients as IDs until selected
(:mod:`repro.fl.fleet`) and folds uploads through the streaming
:class:`~repro.fl.aggregation.HierarchicalAggregator`, so one round
over a 100k-1M-device population costs O(cohort) compute and O(model)
server memory. This suite pins both claims with numbers:

``setup``
    Build a :class:`~repro.fl.simulation.FederatedContext` on the
    virtual backend at population N. No client exists afterwards; the
    phase stays flat as N grows 10x.

``round``
    One full streaming FedAvg round (:meth:`run_streaming_sync_round`):
    sample a cohort of IDs out of N, materialize -> train -> fold ->
    release one client at a time.

``aggregate``
    The server-side reduction alone at cohort sizes up to 100k uploads:
    every upload streams through the hierarchical aggregator, so the
    traced allocation peak stays O(model) + O(8 bytes x cohort) for the
    weight metadata — megabytes where buffering the uploads (cohort x
    state bytes) would take gigabytes.

The acceptance ratios are allocation-based, not timing-based, so they
are machine-independent and deterministic:

- ``naive_over_stream_alloc_at_100k`` — bytes a buffer-everything
  server would hold at the 100k cohort divided by the measured peak;
  collapses to ~1 if aggregation ever materializes the cohort.
- ``aggregate_alloc_scaling_headroom`` — cohort growth divided by
  allocation growth between the smallest and largest aggregate cells;
  collapses to ~1 if allocation grows linearly with the cohort.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass

import numpy as np

from ..data.synthetic import SyntheticSpec, generate
from ..fl.aggregation import HierarchicalAggregator
from ..fl.simulation import FederatedContext, FLConfig
from ..fl.state import get_state
from ..nn.models import build_model
from .round_loop import _peak_alloc, _peak_rss_bytes
from .sparse_compute import _time_variants, write_bench_json

__all__ = [
    "POPULATIONS",
    "AGGREGATE_COHORTS",
    "run_fleet_scale_bench",
    "write_bench_json",
]

#: Simulated population sizes for the setup/round phases.
POPULATIONS = (100_000, 1_000_000)

#: Upload counts for the aggregation-only phase.
AGGREGATE_COHORTS = (1_000, 10_000, 100_000)

#: Training cohort per streaming round (kept modest so the grid runs
#: on laptop-class hardware; the aggregate phase covers the 100k axis).
ROUND_COHORT = 256

_DATASET_SAMPLES = 2_048
_SHARD_SIZE = 8
_IMAGE_SIZE = 8
_NUM_CLASSES = 4
_WIDTH = 0.25


def _build_dataset():
    train, _ = generate(
        SyntheticSpec(
            name="fleet_scale",
            num_classes=_NUM_CLASSES,
            num_train=_DATASET_SAMPLES,
            num_test=_NUM_CLASSES * 2,
            image_size=_IMAGE_SIZE,
            noise=0.3,
            modes_per_class=1,
            seed=11,
        )
    )
    return train


def _make_config(population: int, cohort: int) -> FLConfig:
    return FLConfig(
        num_clients=population,
        rounds=1,
        local_epochs=1,
        batch_size=_SHARD_SIZE,
        lr=0.05,
        participation_fraction=cohort / population,
        client_backend="virtual",
        virtual_shard_size=_SHARD_SIZE,
        fleet="heterogeneous:16",
        seed=0,
    )


@dataclass
class _Cell:
    """One population cell: shared dataset + a reusable context."""

    population: int
    cohort: int

    def __post_init__(self) -> None:
        self.train = _build_dataset()
        self.test = self.train.subset(np.arange(64))
        self.ctx: FederatedContext | None = None

    def setup(self) -> None:
        if self.ctx is not None:
            self.ctx.close()
        model = build_model(
            "small_cnn",
            num_classes=_NUM_CLASSES,
            width_multiplier=_WIDTH,
            image_size=_IMAGE_SIZE,
            seed=1,
        )
        self.ctx = FederatedContext(
            model,
            self.train,
            self.test,
            _make_config(self.population, self.cohort),
            dataset_name="synthetic",
            model_name="small_cnn",
        )

    def round(self) -> None:
        if self.ctx is None:
            self.setup()
        self.ctx.run_streaming_sync_round()

    def close(self) -> None:
        if self.ctx is not None:
            self.ctx.close()
            self.ctx = None


class _AggregateCell:
    """Aggregation-only fixture: one template upload fed ``cohort``
    times (upload content is irrelevant to reduction cost)."""

    def __init__(self, cohort: int, fan_in: int | None = None) -> None:
        self.cohort = cohort
        self.fan_in = fan_in
        model = build_model(
            "small_cnn",
            num_classes=_NUM_CLASSES,
            width_multiplier=_WIDTH,
            image_size=_IMAGE_SIZE,
            seed=1,
        )
        self.state = get_state(model)
        self.state_nbytes = 0
        for value in self.state.values():
            self.state_nbytes += int(value.nbytes)
        self.counts = [_SHARD_SIZE] * cohort

    def aggregate(self) -> None:
        aggregator = HierarchicalAggregator(
            self.counts, fan_in=self.fan_in
        )
        for _ in range(self.cohort):
            aggregator.add_state(self.state)
        aggregator.finish()


def run_fleet_scale_bench(repeats: int = 5, quick: bool = False) -> dict:
    """Run the population/cohort grid; returns a JSON record.

    ``quick`` drops the 1M-population cell and shrinks the training
    cohort for CI smoke runs while keeping the 100k-upload aggregation
    cell the acceptance ratios are read from.
    """
    populations = POPULATIONS[:1] if quick else POPULATIONS
    cohort = 64 if quick else ROUND_COHORT
    aggregate_cohorts = AGGREGATE_COHORTS

    results: list[dict] = []
    for population in populations:
        cell = _Cell(population, cohort)
        try:
            for phase, step in (
                ("setup", cell.setup),
                ("round", cell.round),
            ):
                times = _time_variants({"virtual": step}, repeats)
                results.append(
                    {
                        "population": population,
                        "cohort": cohort if phase == "round" else 0,
                        "phase": phase,
                        "variant": "virtual",
                        "seconds": times["virtual"],
                        "peak_alloc_bytes": _peak_alloc(step),
                        "peak_rss_bytes": _peak_rss_bytes(),
                    }
                )
        finally:
            cell.close()

    state_nbytes = 0
    for agg_cohort in aggregate_cohorts:
        agg = _AggregateCell(agg_cohort)
        state_nbytes = agg.state_nbytes
        times = _time_variants({"virtual": agg.aggregate}, repeats)
        results.append(
            {
                "population": agg_cohort,
                "cohort": agg_cohort,
                "phase": "aggregate",
                "variant": "virtual",
                "seconds": times["virtual"],
                "peak_alloc_bytes": _peak_alloc(agg.aggregate),
                "peak_rss_bytes": _peak_rss_bytes(),
            }
        )

    record = {
        "schema": "bench_fleet_scale/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "peak_rss_bytes": _peak_rss_bytes(),
        },
        "config": {
            "repeats": repeats,
            "populations": list(populations),
            "round_cohort": cohort,
            "aggregate_cohorts": list(aggregate_cohorts),
            "shard_size": _SHARD_SIZE,
            "state_nbytes": state_nbytes,
            "quick": quick,
        },
        "results": results,
        "summary": _summarize(results, state_nbytes),
    }
    return record


def _summarize(results: list[dict], state_nbytes: int) -> dict:
    """Per-phase figures plus gate-ready acceptance ratios."""
    aggregate_rows = sorted(
        (r for r in results if r["phase"] == "aggregate"),
        key=lambda r: r["cohort"],
    )
    per_phase: dict[str, dict] = {}
    for row in results:
        key = f"{row['phase']}/p{row['population']}"
        per_phase[key] = {
            "seconds": row["seconds"],
            "peak_alloc_bytes": row["peak_alloc_bytes"],
            "peak_rss_bytes": row["peak_rss_bytes"],
        }
    acceptance: dict[str, float] = {}
    if aggregate_rows:
        largest = aggregate_rows[-1]
        naive = largest["cohort"] * state_nbytes
        measured = max(1, largest["peak_alloc_bytes"])
        acceptance[
            f"naive_over_stream_alloc_at_{largest['cohort']}"
        ] = naive / measured
    if len(aggregate_rows) >= 2:
        smallest = aggregate_rows[0]
        largest = aggregate_rows[-1]
        cohort_growth = largest["cohort"] / smallest["cohort"]
        alloc_growth = max(1, largest["peak_alloc_bytes"]) / max(
            1, smallest["peak_alloc_bytes"]
        )
        acceptance["aggregate_alloc_scaling_headroom"] = (
            cohort_growth / alloc_growth
        )
    return {"per_phase": per_phase, "acceptance": acceptance}
