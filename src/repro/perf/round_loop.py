"""Clients x density x model benchmarks of the round transport layer.

Measures the three data-movement phases of one federated round —
**broadcast** (server -> every client), **upload** (every client ->
server) and **aggregate** (folding the uploads into the global state) —
for two transport pipelines:

``legacy``
    The pre-codec path: the broadcast is ``pickle.dumps`` of the whole
    model plus one ``pickle.loads`` per client (exactly what the old
    process backend shipped per task), uploads are pickled dense
    ``{name: array}`` state dicts, and aggregation is the allocating
    FedAvg reference (a fresh float64 accumulator and a fresh product
    per contribution, per tensor, per round).

``packed``
    The sparse round-transport subsystem: the broadcast is packed once
    against the server masks (:mod:`repro.fl.payload`), written once
    into a ``multiprocessing.shared_memory`` arena, and restored into a
    persistent worker model through zero-copy ``np.frombuffer`` views;
    uploads are packed payloads; aggregation is the sparse-aware
    allocation-free path that accumulates only active entries through a
    reusable workspace.

Phase times scale with *density* under ``packed`` and with *model
size* under ``legacy`` — the gap at 10% density is the acceptance
ratio the CI regression gate tracks. (The default simulation
additionally materializes dict states from packed uploads for method
compatibility; the grid measures the pure transport pipelines.)

A second pass records allocation behavior: ``tracemalloc`` peaks per
phase (post-warm-up, so reusable buffers count once) and the process
peak RSS, reproducing the memory half of the story.
"""

from __future__ import annotations

import json
import pickle
import platform
import tracemalloc
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..fl.aggregation import AggregationWorkspace, aggregate_packed_states, \
    weighted_average_states
from ..fl.payload import ModelBinding, PackedPayload, StatePacker, \
    build_mask_indices, pack_state
from ..fl.state import get_state
from ..nn.models import build_model
from ..sparse.mask import MaskSet
from .sparse_compute import _time_variants, write_bench_json

__all__ = [
    "MODEL_GRID",
    "CLIENT_COUNTS",
    "DENSITIES",
    "run_round_loop_bench",
    "write_bench_json",
]


@dataclass(frozen=True)
class ModelCase:
    name: str
    model: str
    width: float


MODEL_GRID = (
    ModelCase("small_cnn", "small_cnn", 1.0),
    ModelCase("resnet18_w025", "resnet18", 0.25),
    ModelCase("resnet18_w050", "resnet18", 0.5),
)

CLIENT_COUNTS = (4, 16)

DENSITIES = (1.0, 0.5, 0.1)

_PHASES = ("broadcast", "upload", "aggregate")


def _random_masks(
    model, density: float, rng: np.random.Generator
) -> MaskSet:
    """Unstructured random masks at ``density`` over prunable params."""
    if density >= 1.0:
        return MaskSet.dense(model)
    masks = {}
    for name, param in model.named_parameters():
        if not param.prunable:
            continue
        mask = rng.random(param.shape) < density
        if not mask.any():
            mask.reshape(-1)[0] = True
        masks[name] = mask
    return MaskSet(masks)


class _Cell:
    """One grid cell: a model, a fleet size, a density — plus both
    pipelines' reusable fixtures (arena, worker model, workspace)."""

    def __init__(
        self, case: ModelCase, clients: int, density: float
    ) -> None:
        from multiprocessing import shared_memory

        self.case = case
        self.clients = clients
        self.density = density
        rng = np.random.default_rng(7)
        self.model = build_model(
            case.model, num_classes=10, width_multiplier=case.width,
            image_size=32, seed=1,
        )
        self.masks = _random_masks(self.model, density, rng)
        self.masks.apply(self.model)
        self.state = get_state(self.model)
        self.indices = build_mask_indices(self.masks)
        # Per-client uploads: independent arrays with the same layout
        # (content is irrelevant to transport timing).
        self.client_states = [
            {k: v.copy() for k, v in self.state.items()}
            for _ in range(clients)
        ]
        self.counts = [100 + 10 * i for i in range(clients)]
        self.client_payloads = [
            pack_state(s, self.masks, indices=self.indices)
            for s in self.client_states
        ]
        # The persistent worker-side model the packed broadcast restores
        # into (the shm executor caches one of these per worker), plus
        # the cached target binding and a worker-style upload binding.
        self.worker_model = pickle.loads(
            pickle.dumps(self.model, protocol=pickle.HIGHEST_PROTOCOL)
        )
        template = pack_state(self.state, self.masks, indices=self.indices)
        self.binding = ModelBinding(self.worker_model, template.specs)
        self.packer = StatePacker(
            self.state, self.masks, indices=self.indices
        )
        self.workspace = AggregationWorkspace()
        self.spec_cache: dict = {}
        dense_cap = pack_state(self.state, MaskSet.dense(self.model))
        self.arena = shared_memory.SharedMemory(
            create=True, size=dense_cap.wire_nbytes + 4096
        )

    def close(self) -> None:
        self.binding.release()  # views into the arena pin the mapping
        self.arena.close()
        self.arena.unlink()

    # -- legacy pipeline ----------------------------------------------
    def legacy_broadcast(self) -> None:
        blob = pickle.dumps(self.model, protocol=pickle.HIGHEST_PROTOCOL)
        for _ in range(self.clients):
            pickle.loads(blob)

    def legacy_upload(self) -> None:
        for state in self.client_states:
            pickle.loads(
                pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            )

    def legacy_aggregate(self) -> None:
        weighted_average_states(self.client_states, self.counts)

    # -- packed pipeline ----------------------------------------------
    def packed_broadcast(self) -> None:
        payload = self.packer.pack(self.state)
        length = payload.write_into(self.arena.buf)
        shared = PackedPayload.from_bytes(
            self.arena.buf[:length], copy=False, validate=False
        )
        for _ in range(self.clients):
            self.binding.restore(shared, assume_masked=True)
        del shared  # release the arena views before the next remap

    def packed_upload(self) -> None:
        for _ in self.client_states:
            # Worker side: pack straight off the trained model and ship
            # the wire bytes; master side: zero-copy parse with the
            # round's spec layout cached.
            blob = self.binding.pack(indices=self.indices).to_wire()
            PackedPayload.from_bytes(
                blob, copy=False, validate=False,
                spec_cache=self.spec_cache,
            )

    def packed_aggregate(self) -> None:
        aggregate_packed_states(
            self.client_payloads, self.counts, workspace=self.workspace
        )

    def steps(self) -> dict[str, dict[str, callable]]:
        return {
            "broadcast": {
                "legacy": self.legacy_broadcast,
                "packed": self.packed_broadcast,
            },
            "upload": {
                "legacy": self.legacy_upload,
                "packed": self.packed_upload,
            },
            "aggregate": {
                "legacy": self.legacy_aggregate,
                "packed": self.packed_aggregate,
            },
        }


def _peak_alloc(step) -> int:
    """Peak bytes allocated by one (post-warm-up) call of ``step``."""
    step()  # warm up caches and reusable buffers
    tracemalloc.start()
    try:
        step()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _peak_rss_bytes() -> int | None:
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB; macOS reports bytes.
        return rss * 1024 if platform.system() == "Linux" else rss
    # repro-lint: allow[silent-except] -- RSS is optional benchmark
    # metadata; platforms without the resource module report None.
    except Exception:  # pragma: no cover - non-POSIX
        return None


def run_round_loop_bench(
    repeats: int = 5,
    densities: tuple[float, ...] = DENSITIES,
    quick: bool = False,
) -> dict:
    """Run the clients x density x model grid; returns a JSON record.

    ``quick`` shrinks the grid for CI smoke runs while keeping a small
    and a convnet-sized model and the 10% density cell the acceptance
    ratios are read from.
    """
    models = MODEL_GRID[:2] if quick else MODEL_GRID
    client_counts = (8,) if quick else CLIENT_COUNTS
    if quick:
        densities = tuple(d for d in densities if d in (1.0, 0.1))

    results: list[dict] = []
    for case in models:
        for clients in client_counts:
            for density in densities:
                cell = _Cell(case, clients, density)
                try:
                    base = {
                        "model": case.name,
                        "clients": clients,
                        "density": density,
                        "params": cell.model.num_parameters(),
                    }
                    for phase, variants in cell.steps().items():
                        times = _time_variants(variants, repeats)
                        for variant, seconds in times.items():
                            results.append(
                                {
                                    **base,
                                    "phase": phase,
                                    "variant": variant,
                                    "seconds": seconds,
                                }
                            )
                        for variant, step in variants.items():
                            results.append(
                                {
                                    **base,
                                    "phase": phase,
                                    "variant": variant,
                                    "peak_alloc_bytes": _peak_alloc(step),
                                }
                            )
                finally:
                    cell.close()

    record = {
        "schema": "bench_round_loop/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "peak_rss_bytes": _peak_rss_bytes(),
        },
        "config": {
            "repeats": repeats,
            "densities": list(densities),
            "clients": list(client_counts),
            "models": [case.name for case in models],
            "quick": quick,
        },
        "results": results,
        "summary": _summarize(results),
    }
    return record


def _summarize(results: list[dict]) -> dict:
    """Per-cell round totals, speedups, and gate-ready acceptance ratios."""
    times: dict[tuple, float] = {}
    for row in results:
        if "seconds" not in row:
            continue
        key = (
            row["model"], row["clients"], row["density"],
            row["phase"], row["variant"],
        )
        times[key] = row["seconds"]
    cells = sorted(
        {
            (r["model"], r["clients"], r["density"])
            for r in results
            if "seconds" in r
        }
    )
    per_cell: dict[str, dict] = {}
    speedups_at_01: list[float] = []
    broadcast_at_01: list[float] = []
    for model, clients, density in cells:
        legacy = sum(
            times[(model, clients, density, phase, "legacy")]
            for phase in _PHASES
        )
        packed = sum(
            times[(model, clients, density, phase, "packed")]
            for phase in _PHASES
        )
        entry = {
            "legacy_round_seconds": legacy,
            "packed_round_seconds": packed,
            "round_speedup": legacy / packed if packed else float("inf"),
        }
        for phase in _PHASES:
            lt = times[(model, clients, density, phase, "legacy")]
            pt = times[(model, clients, density, phase, "packed")]
            entry[f"{phase}_speedup"] = lt / pt if pt else float("inf")
        per_cell[f"{model}/c{clients}/d{density:g}"] = entry
        if density == 0.1:
            speedups_at_01.append(entry["round_speedup"])
            broadcast_at_01.append(entry["broadcast_speedup"])
    acceptance = {}
    if speedups_at_01:
        acceptance["max_round_speedup_at_0.1"] = max(speedups_at_01)
        acceptance["min_round_speedup_at_0.1"] = min(speedups_at_01)
    if broadcast_at_01:
        acceptance["max_broadcast_speedup_at_0.1"] = max(broadcast_at_01)
    return {"per_cell": per_cell, "acceptance": acceptance}
