"""Pool-size x clients x model benchmarks of candidate selection.

Times the full adaptive-BN selection protocol (paper Algorithm 1) end
to end — BN recalibration sweeps, statistics aggregation, dev-loss
scoring, final pick — for two implementations of the same protocol:

``reference``
    The pre-change nested loop
    (:meth:`~repro.core.adaptive_bn.AdaptiveBNSelection.select_reference`):
    one full dense model install per (candidate, client) pair, fresh
    lowerings every pass.

``fast``
    The selection engine (:mod:`repro.core.selection_engine`): hoisted
    per-candidate installs through a flat snapshot, memoized dev-batch
    lowerings, client sweeps through the serial executor. Outputs are
    byte-identical to ``reference`` — every cell asserts it and records
    the result.

``fast_process``
    The same engine with the ``process`` executor: each candidate is
    broadcast once through the shared-memory arena and the per-client
    sweeps fan out across persistent workers. Wall-clock gains scale
    with available cores, so this variant is reported but excluded from
    the machine-portable acceptance ratios.

The grid mirrors the paper's cross-device regime — a comparatively
large model against many devices whose dev sets (``D_hat_k``, 10% of a
small local shard) hold only a handful of samples — which is exactly
where the per-pair install overhead the fast path removes dominates.
Timings use wall-clock seconds (the parallel variant overlaps work),
sampled interleaved so machine-wide drift hits every variant equally.

Each cell also reports the paper's Table 2 framing: selection FLOPs
per device against the FLOPs of one round of sparse local training
under the selected mask, and the selection bytes against one round of
model exchange.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass

import numpy as np

from ..core.adaptive_bn import AdaptiveBNSelection
from ..data.synthetic import build_dataset
from ..fl.simulation import FederatedContext, FLConfig
from ..metrics.flops import training_flops_per_sample
from ..nn.models import build_model
from ..pruning.candidate_pool import generate_candidate_pool
from .sparse_compute import write_bench_json

__all__ = [
    "MODEL_GRID",
    "CLIENT_COUNTS",
    "POOL_SIZES",
    "run_candidate_selection_bench",
    "write_bench_json",
]

#: Selection cost scales with the dev-sweep compute; 16 px inputs keep
#: the grid CI-sized while preserving the install/sweep balance of the
#: paper's cross-device regime (few dev samples per device).
_IMAGE_SIZE = 16
_NUM_TRAIN = 700
_TARGET_DENSITY = 0.1
_BATCH_SIZE = 32


@dataclass(frozen=True)
class ModelCase:
    name: str
    model: str
    width: float


MODEL_GRID = (
    ModelCase("small_cnn", "small_cnn", 1.0),
    ModelCase("resnet18_w025", "resnet18", 0.25),
    ModelCase("resnet18_w050", "resnet18", 0.5),
)

CLIENT_COUNTS = (4, 16)

POOL_SIZES = (2, 8)


class _Cell:
    """One grid cell: contexts, a candidate pool, and the selector."""

    def __init__(
        self,
        case: ModelCase,
        clients: int,
        pool_size: int,
        with_process: bool,
    ) -> None:
        self.case = case
        self.clients = clients
        self.pool_size = pool_size
        train, test = build_dataset(
            "cifar10",
            num_train=_NUM_TRAIN,
            num_test=50,
            image_size=_IMAGE_SIZE,
            seed=3,
        )
        _, federated = train.split(0.2, np.random.default_rng(9))
        self._federated, self._test = federated, test
        self.ctx = self._make_context("serial")
        self.process_ctx = (
            self._make_context("process") if with_process else None
        )
        self.pool = generate_candidate_pool(
            self.ctx.model,
            _TARGET_DENSITY,
            pool_size,
            np.random.default_rng(17),
            noise=0.9,
        )
        self.selector = AdaptiveBNSelection(batch_size=_BATCH_SIZE)
        # Every run's report, per variant — warm-up and timed repeats
        # alike — so byte-identity is asserted for each execution, not
        # just the first.
        self.reports: dict[str, list] = {}

    def _make_context(self, executor: str) -> FederatedContext:
        model = build_model(
            self.case.model,
            num_classes=10,
            width_multiplier=self.case.width,
            image_size=_IMAGE_SIZE,
            seed=1,
        )
        config = FLConfig(
            num_clients=self.clients,
            rounds=1,
            local_epochs=1,
            batch_size=_BATCH_SIZE,
            executor=executor,
            seed=0,
        )
        return FederatedContext(
            model, self._federated, self._test, config,
            dataset_name="bench", model_name=self.case.name,
        )

    def close(self) -> None:
        self.ctx.close()
        if self.process_ctx is not None:
            self.process_ctx.close()

    # -- timed variants ------------------------------------------------
    def reference(self) -> None:
        _, report = self.selector.select_reference(self.ctx, self.pool)
        self.reports.setdefault("reference", []).append(report)

    def fast(self) -> None:
        _, report = self.selector.select(self.ctx, self.pool)
        self.reports.setdefault("fast", []).append(report)

    def fast_process(self) -> None:
        _, report = self.selector.select(self.process_ctx, self.pool)
        self.reports.setdefault("fast_process", []).append(report)

    def steps(self) -> dict:
        steps = {"reference": self.reference, "fast": self.fast}
        if self.process_ctx is not None:
            steps["fast_process"] = self.fast_process
        return steps

    def outputs_identical(self) -> bool:
        """Byte-identity of every run of every variant vs the reference."""
        reference = self.reports["reference"][0]
        for runs in self.reports.values():
            for report in runs:
                if report.candidate_losses != reference.candidate_losses:
                    return False
                if report.selected_index != reference.selected_index:
                    return False
                if report.comm_bytes != reference.comm_bytes:
                    return False
                if report.flops_per_device != reference.flops_per_device:
                    return False
        return True

    def table2_row(self) -> dict:
        """Selection overhead relative to one training round (Table 2)."""
        report = self.reports["reference"][0]
        chosen = self.pool[report.selected_index]
        ctx = self.ctx
        train_flops_per_round = (
            training_flops_per_sample(ctx.profile, chosen.masks)
            * ctx.config.local_epochs
            * max(ctx.sample_counts)
        )
        round_comm = 2 * ctx.model_exchange_bytes() * len(ctx.clients)
        return {
            "selection_flops_per_device": report.flops_per_device,
            "train_flops_per_round": train_flops_per_round,
            "selection_flops_over_round": (
                report.flops_per_device / train_flops_per_round
            ),
            "selection_comm_bytes": report.comm_bytes,
            "round_comm_bytes": round_comm,
            "selection_comm_over_round": report.comm_bytes / round_comm,
        }


def _time_wall_variants(steps: dict, repeats: int) -> dict[str, float]:
    """Median wall-seconds per call, sampled interleaved.

    Wall clock (not ``process_time``) because the ``fast_process``
    variant runs its sweeps on worker processes; interleaving keeps the
    inter-variant ratios honest under machine-wide drift.
    """
    for step in steps.values():
        step()  # warm up (pools, caches, BLAS)
    samples: dict[str, list[float]] = {name: [] for name in steps}
    for _ in range(repeats):
        for name, step in steps.items():
            start = time.perf_counter()
            step()
            samples[name].append(time.perf_counter() - start)
    return {
        name: float(np.median(values)) for name, values in samples.items()
    }


def run_candidate_selection_bench(
    repeats: int = 3,
    quick: bool = False,
    with_process: bool = True,
) -> dict:
    """Run the pool x clients x model grid; returns a JSON record.

    ``quick`` shrinks the grid for CI smoke runs while keeping the
    pool-8 cell the acceptance ratios are read from.
    """
    if quick:
        # Both acceptance extremes at pool 8: the full grid's worst
        # cell (small_cnn, compute-light, ~1.2x) and its best
        # (resnet18_w050, install-dominated), so the min and max gate
        # keys each track a cell CI actually measures.
        cells = [
            (MODEL_GRID[0], 4, 8),
            (MODEL_GRID[2], 16, 8),
        ]
    else:
        cells = [
            (case, clients, pool)
            for case in MODEL_GRID
            for clients in CLIENT_COUNTS
            for pool in POOL_SIZES
        ]

    results: list[dict] = []
    for case, clients, pool_size in cells:
        cell = _Cell(case, clients, pool_size, with_process=with_process)
        try:
            times = _time_wall_variants(cell.steps(), repeats)
            identical = cell.outputs_identical()
            base = {
                "model": case.name,
                "clients": clients,
                "pool_size": pool_size,
                "params": cell.ctx.model.num_parameters(),
                "dev_samples": [
                    c.num_dev_samples for c in cell.ctx.clients
                ],
                "outputs_identical": identical,
                "table2": cell.table2_row(),
            }
            if not identical:
                raise AssertionError(
                    f"fast-path outputs diverged from the reference in "
                    f"cell {case.name}/c{clients}/p{pool_size}"
                )
            for variant, seconds in times.items():
                results.append(
                    {**base, "variant": variant, "seconds": seconds}
                )
        finally:
            cell.close()

    record = {
        "schema": "bench_candidate_selection/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "repeats": repeats,
            "quick": quick,
            "image_size": _IMAGE_SIZE,
            "target_density": _TARGET_DENSITY,
            "batch_size": _BATCH_SIZE,
            "models": sorted({c[0].name for c in cells}),
            "clients": sorted({c[1] for c in cells}),
            "pool_sizes": sorted({c[2] for c in cells}),
        },
        "results": results,
        "summary": _summarize(results),
    }
    return record


def _summarize(results: list[dict]) -> dict:
    """Per-cell speedups plus gate-ready acceptance ratios.

    The acceptance ratios compare the serial fast path against the
    reference loop — both single-core, so the ratio is stable across
    machines. ``fast_process`` wall speedups are reported per cell only
    (they scale with the host's core count).
    """
    times: dict[tuple, float] = {}
    for row in results:
        key = (row["model"], row["clients"], row["pool_size"], row["variant"])
        times[key] = row["seconds"]
    cells = sorted(
        {(r["model"], r["clients"], r["pool_size"]) for r in results}
    )
    per_cell: dict[str, dict] = {}
    speedups_at_pool8: list[float] = []
    for model, clients, pool in cells:
        reference = times[(model, clients, pool, "reference")]
        fast = times[(model, clients, pool, "fast")]
        entry = {
            "reference_seconds": reference,
            "fast_seconds": fast,
            "selection_speedup": reference / fast if fast else float("inf"),
        }
        process = times.get((model, clients, pool, "fast_process"))
        if process is not None:
            entry["fast_process_seconds"] = process
            entry["process_wall_speedup"] = (
                reference / process if process else float("inf")
            )
        per_cell[f"{model}/c{clients}/p{pool}"] = entry
        if pool >= 8:
            speedups_at_pool8.append(entry["selection_speedup"])
    acceptance = {}
    if speedups_at_pool8:
        acceptance["max_selection_speedup_at_pool8"] = max(speedups_at_pool8)
        acceptance["min_selection_speedup_at_pool8"] = min(speedups_at_pool8)
    return {"per_cell": per_cell, "acceptance": acceptance}
