"""Byte-level storage model for sparse and dense tensors.

All memory-footprint and communication-cost numbers in the experiments
derive from this single model, so assumptions live in one place:

- dense tensors cost 4 bytes per element (float32);
- sparse tensors are stored COO-style at 8 bytes per *active* element
  (4-byte value + 4-byte flat index), unless the density is high enough
  that dense storage is cheaper, in which case dense storage is used.
"""

from __future__ import annotations

from ..nn.module import Module
from .mask import MaskSet

__all__ = [
    "VALUE_BYTES",
    "INDEX_BYTES",
    "dense_bytes",
    "sparse_bytes",
    "sparse_is_cheaper",
    "mask_set_bytes",
    "model_parameter_bytes",
    "bytes_to_mb",
]

VALUE_BYTES = 4
INDEX_BYTES = 4


def sparse_is_cheaper(num_active: int, dense_size: int) -> bool:
    """True when COO storage strictly beats dense for this tensor.

    This is the 50% crossover (at 4-byte values and indices): exactly
    the rule the transport codec uses to pick a tensor's encoding, kept
    here so the accounting model and the wire format can never disagree.
    Ties go to dense (same bytes, cheaper to decode).
    """
    if num_active < 0 or dense_size < 0:
        raise ValueError("sizes must be non-negative")
    coo = num_active * (VALUE_BYTES + INDEX_BYTES)
    return coo < dense_bytes(dense_size)


def dense_bytes(num_elements: int) -> int:
    """Bytes to store ``num_elements`` float32 values densely."""
    if num_elements < 0:
        raise ValueError(f"num_elements must be >= 0, got {num_elements}")
    return num_elements * VALUE_BYTES


def sparse_bytes(num_active: int, dense_size: int) -> int:
    """Bytes to store a sparse tensor, choosing the cheaper layout."""
    if num_active < 0 or dense_size < 0:
        raise ValueError("sizes must be non-negative")
    if num_active > dense_size:
        raise ValueError(
            f"num_active={num_active} exceeds dense_size={dense_size}"
        )
    coo = num_active * (VALUE_BYTES + INDEX_BYTES)
    return min(coo, dense_bytes(dense_size))


def mask_set_bytes(masks: MaskSet) -> int:
    """Bytes to transmit the sparse parameters selected by ``masks``."""
    return sum(
        sparse_bytes(int(mask.sum()), mask.size) for _, mask in masks.items()
    )


def model_parameter_bytes(model: Module) -> int:
    """Bytes to store every parameter of ``model`` (masked ones sparsely).

    Non-prunable parameters (BN affine terms, biases) are dense; masked
    prunable parameters use the sparse layout.
    """
    total = 0
    for _, param in model.named_parameters():
        if param.mask is None:
            total += dense_bytes(param.size)
        else:
            total += sparse_bytes(param.num_active, param.size)
    return total


def bytes_to_mb(num_bytes: int | float) -> float:
    """Bytes -> megabytes (10^6, as used in the paper's tables)."""
    return num_bytes / 1e6
