"""Per-layer binary masks over a model's prunable parameters.

A :class:`MaskSet` is the canonical representation of a pruned-model
*structure* (the paper's ``m``): a mapping from prunable-parameter name
to a boolean array. Mask sets are what the server builds, ships to
devices, evaluates, and adjusts; installing one into a model applies
``theta = Theta * m``.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module

__all__ = ["MaskSet", "prunable_parameters", "structured_row_mask"]


def prunable_parameters(model: Module):
    """Ordered ``(name, Parameter)`` pairs of the prunable parameters."""
    return [(n, p) for n, p in model.named_parameters() if p.prunable]


def structured_row_mask(
    shape: tuple[int, ...],
    density: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Output-channel-structured mask of roughly the requested density.

    Keeps ``round(density * shape[0])`` whole rows of axis 0 (at least
    one) and prunes the rest entirely. For a conv/linear weight, axis 0
    is the output dimension, so the pruned rows are exactly the
    fully-pruned output channels the compute engine's density dispatch
    can skip. Used by the sparse-compute benchmarks and available to
    structured-pruning experiments.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if len(shape) == 0:
        raise ValueError("mask shape must have at least one dimension")
    rows = shape[0]
    keep = max(1, int(round(density * rows))) if density > 0.0 else 0
    mask = np.zeros(shape, dtype=bool)
    if keep == 0:
        return mask
    if rng is None:
        kept = np.arange(keep)
    else:
        kept = np.sort(rng.choice(rows, size=keep, replace=False))
    mask[kept] = True
    return mask


class MaskSet:
    """Mapping of parameter name -> boolean mask, with density algebra."""

    def __init__(self, masks: dict[str, np.ndarray]) -> None:
        self._masks = {
            name: np.asarray(mask, dtype=bool) for name, mask in masks.items()
        }

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def dense(cls, model: Module) -> "MaskSet":
        """All-ones masks over every prunable parameter."""
        return cls(
            {
                name: np.ones(param.shape, dtype=bool)
                for name, param in prunable_parameters(model)
            }
        )

    @classmethod
    def from_model(cls, model: Module) -> "MaskSet":
        """Capture the masks currently installed in ``model``."""
        masks = {}
        for name, param in prunable_parameters(model):
            if param.mask is None:
                masks[name] = np.ones(param.shape, dtype=bool)
            else:
                masks[name] = param.mask.astype(bool).copy()
        return cls(masks)

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._masks

    def __getitem__(self, name: str) -> np.ndarray:
        return self._masks[name]

    def __setitem__(self, name: str, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        if name in self._masks and mask.shape != self._masks[name].shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match existing shape "
                f"{self._masks[name].shape} for {name!r}"
            )
        self._masks[name] = mask

    def __iter__(self):
        return iter(self._masks)

    def __len__(self) -> int:
        return len(self._masks)

    def items(self):
        return self._masks.items()

    def layer_names(self) -> list[str]:
        return list(self._masks)

    # ------------------------------------------------------------------
    # Density algebra
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total prunable parameter count covered by this mask set."""
        return sum(mask.size for mask in self._masks.values())

    @property
    def num_active(self) -> int:
        """Number of unpruned parameters."""
        return int(sum(mask.sum() for mask in self._masks.values()))

    @property
    def density(self) -> float:
        """Overall density d = active / total."""
        if self.total == 0:
            return 1.0
        return self.num_active / self.total

    def layer_density(self, name: str) -> float:
        mask = self._masks[name]
        if mask.size == 0:
            return 1.0
        return float(mask.sum()) / mask.size

    def layer_densities(self) -> dict[str, float]:
        return {name: self.layer_density(name) for name in self._masks}

    def layer_active(self, name: str) -> int:
        return int(self._masks[name].sum())

    # ------------------------------------------------------------------
    # Model interaction
    # ------------------------------------------------------------------
    def apply(self, model: Module) -> None:
        """Install the masks into ``model`` and zero pruned weights."""
        params = dict(prunable_parameters(model))
        missing = set(self._masks) - set(params)
        if missing:
            raise KeyError(f"masks for unknown parameters: {sorted(missing)}")
        for name, mask in self._masks.items():
            params[name].set_mask(mask)
            params[name].apply_mask()

    def matches_model(self, model: Module) -> bool:
        """True if mask names and shapes line up with ``model``."""
        params = dict(prunable_parameters(model))
        if set(params) != set(self._masks):
            return False
        return all(
            params[name].shape == mask.shape
            for name, mask in self._masks.items()
        )

    # ------------------------------------------------------------------
    # Copies / combination
    # ------------------------------------------------------------------
    def copy(self) -> "MaskSet":
        return MaskSet({n: m.copy() for n, m in self._masks.items()})

    def union(self, other: "MaskSet") -> "MaskSet":
        """Element-wise OR (used by sparse-aggregation baselines)."""
        self._check_compatible(other)
        return MaskSet(
            {n: self._masks[n] | other._masks[n] for n in self._masks}
        )

    def intersection(self, other: "MaskSet") -> "MaskSet":
        """Element-wise AND."""
        self._check_compatible(other)
        return MaskSet(
            {n: self._masks[n] & other._masks[n] for n in self._masks}
        )

    def difference_count(self, other: "MaskSet") -> int:
        """Number of positions where the two mask sets disagree."""
        self._check_compatible(other)
        return int(
            sum(
                (self._masks[n] != other._masks[n]).sum()
                for n in self._masks
            )
        )

    def _check_compatible(self, other: "MaskSet") -> None:
        if set(self._masks) != set(other._masks):
            raise ValueError("mask sets cover different parameters")
        for name in self._masks:
            if self._masks[name].shape != other._masks[name].shape:
                raise ValueError(f"shape mismatch for layer {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MaskSet(layers={len(self)}, density={self.density:.5f}, "
            f"active={self.num_active}/{self.total})"
        )
