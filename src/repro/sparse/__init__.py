"""Sparsity substrate: masks, streaming top-K buffers, storage model."""

from .mask import MaskSet, prunable_parameters, structured_row_mask
from .storage import (
    INDEX_BYTES,
    VALUE_BYTES,
    bytes_to_mb,
    dense_bytes,
    mask_set_bytes,
    model_parameter_bytes,
    sparse_bytes,
    sparse_is_cheaper,
)
from .quantize import (
    QuantizedTensor,
    dequantize_state,
    dequantize_tensor,
    quantization_error,
    quantize_state,
    quantize_tensor,
)
from .topk_buffer import TopKBuffer

__all__ = [
    "INDEX_BYTES",
    "MaskSet",
    "QuantizedTensor",
    "TopKBuffer",
    "VALUE_BYTES",
    "bytes_to_mb",
    "dense_bytes",
    "dequantize_state",
    "dequantize_tensor",
    "mask_set_bytes",
    "model_parameter_bytes",
    "prunable_parameters",
    "quantization_error",
    "quantize_state",
    "quantize_tensor",
    "sparse_bytes",
    "sparse_is_cheaper",
    "structured_row_mask",
]
