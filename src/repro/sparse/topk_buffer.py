"""Streaming top-K-by-magnitude buffer (paper Section III-D).

Devices in FedTiny never materialize the dense gradient of the pruned
parameters. Instead they stream gradient values through a buffer that
keeps only the ``a_t^l`` entries with the largest absolute value, so the
device-side memory cost is O(a_t^l) regardless of layer size:

    "When a gradient is calculated, and the buffer is full, if its
    magnitude is larger than the smallest magnitude in the buffer, this
    gradient will be pushed into the buffer, and the gradient with the
    smallest magnitude will be discarded."

:meth:`TopKBuffer.push` implements exactly that scalar protocol (backed
by a min-heap on magnitude); :meth:`TopKBuffer.push_chunk` is a
vectorized equivalent for simulation throughput whose peak memory is
O(chunk + K).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["TopKBuffer"]


class TopKBuffer:
    """Keep the ``capacity`` (index, value) pairs of largest ``|value|``."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        # Min-heap of (|value|, index, value): the root is the weakest
        # entry and is evicted first.
        self._heap: list[tuple[float, int, float]] = []
        self._pushed = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def num_pushed(self) -> int:
        """Total number of values offered to the buffer."""
        return self._pushed

    @property
    def min_magnitude(self) -> float:
        """Smallest magnitude currently retained (0 if empty)."""
        if not self._heap:
            return 0.0
        return self._heap[0][0]

    def push(self, index: int, value: float) -> None:
        """Offer one (index, value) pair, evicting the weakest if full."""
        self._pushed += 1
        if self.capacity == 0:
            return
        magnitude = abs(float(value))
        entry = (magnitude, int(index), float(value))
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        elif magnitude > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def push_chunk(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Vectorized push of a chunk of (index, value) pairs.

        Equivalent to calling :meth:`push` for every element; peak
        memory is O(len(chunk) + capacity).
        """
        indices = np.asarray(indices).reshape(-1)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if indices.shape != values.shape:
            raise ValueError(
                f"indices and values length mismatch: "
                f"{indices.shape} vs {values.shape}"
            )
        self._pushed += int(values.size)
        if self.capacity == 0 or values.size == 0:
            return
        magnitudes = np.abs(values)
        if values.size > self.capacity:
            # Pre-filter the chunk to its own top-capacity entries.
            keep = np.argpartition(magnitudes, -self.capacity)[
                -self.capacity :
            ]
            indices, values, magnitudes = (
                indices[keep],
                values[keep],
                magnitudes[keep],
            )
        for magnitude, index, value in zip(magnitudes, indices, values):
            entry = (float(magnitude), int(index), float(value))
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif magnitude > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Retained ``(indices, values)`` sorted by descending magnitude."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        indices = np.array([e[1] for e in ordered], dtype=np.int64)
        values = np.array([e[2] for e in ordered], dtype=np.float32)
        return indices, values

    def memory_entries(self) -> int:
        """Number of scalar slots the buffer occupies (the O(K) claim)."""
        return len(self._heap)
