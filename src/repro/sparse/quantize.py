"""Uniform affine quantization for communication compression.

FL-PQSU (one of the paper's baselines) combines Pruning, Quantization
and Selective Updating; the paper evaluates only the pruning stage. We
implement the quantization stage as an optional extension: symmetric
per-tensor int8/int16 quantization of the values a device uploads,
with byte accounting, so the communication numbers can be studied with
and without quantized uploads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_tensor",
    "dequantize_tensor",
    "quantize_state",
    "dequantize_state",
    "quantization_error",
]


@dataclass(frozen=True)
class QuantizedTensor:
    """Symmetric uniform quantization of one array."""

    codes: np.ndarray  # integer codes
    scale: float
    bits: int
    shape: tuple[int, ...]

    @property
    def payload_bytes(self) -> int:
        """Bytes on the wire: packed codes + one float32 scale."""
        return (self.codes.size * self.bits + 7) // 8 + 4


def quantize_tensor(values: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetric per-tensor quantization to ``bits`` (2..16)."""
    if not 2 <= bits <= 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    values = np.asarray(values, dtype=np.float32)
    max_code = (1 << (bits - 1)) - 1
    peak = float(np.abs(values).max()) if values.size else 0.0
    scale = peak / max_code if peak > 0 else 1.0
    # Narrowest integer dtype that holds [-max_code - 1, max_code], so
    # in-memory copies and process-executor pickles of quantized uploads
    # stay close to the on-the-wire payload size.
    dtype = np.int8 if bits <= 8 else np.int16
    codes = np.clip(
        np.round(values / scale), -max_code - 1, max_code
    ).astype(dtype)
    return QuantizedTensor(
        codes=codes, scale=scale, bits=bits, shape=values.shape
    )


def dequantize_tensor(quantized: QuantizedTensor) -> np.ndarray:
    """Reconstruct the float32 tensor from its codes."""
    return (quantized.codes.astype(np.float32) * quantized.scale).reshape(
        quantized.shape
    )


def quantize_state(
    state: dict[str, np.ndarray], bits: int = 8
) -> dict[str, QuantizedTensor]:
    """Quantize every tensor of a parameter/buffer state dict."""
    return {name: quantize_tensor(value, bits) for name, value in
            state.items()}


def dequantize_state(
    quantized: dict[str, QuantizedTensor]
) -> dict[str, np.ndarray]:
    """Reconstruct a state dict from quantized uploads."""
    return {name: dequantize_tensor(q) for name, q in quantized.items()}


def quantization_error(
    values: np.ndarray, bits: int = 8
) -> float:
    """Relative L2 reconstruction error of one quantize/dequantize trip."""
    values = np.asarray(values, dtype=np.float32)
    norm = float(np.linalg.norm(values))
    if norm == 0.0:
        return 0.0
    reconstructed = dequantize_tensor(quantize_tensor(values, bits))
    return float(np.linalg.norm(values - reconstructed)) / norm
