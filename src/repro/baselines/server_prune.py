"""Pruning-at-initialization baselines: SNIP, SynFlow, FL-PQSU.

All three prune once on the server — before any device sees the model —
and then federated fine-tuning proceeds with the mask frozen. This is
exactly the "decoupled" design the paper criticizes: with non-iid local
data the server-side mask is biased and nothing downstream can fix it.

- SNIP scores connection sensitivity |g*w| on the server's public
  one-shot dataset (iterative, exponential schedule);
- SynFlow is data-free synaptic flow (iterative);
- FL-PQSU's pruning stage is one-shot L1/magnitude pruning with a
  uniform layer-wise rate (the paper converts it to unstructured).
"""

from __future__ import annotations

from ..data.dataset import Dataset
from ..fl.simulation import FederatedContext
from ..methods import FederatedMethod
from ..metrics.tracker import RunResult
from ..pruning.magnitude import magnitude_mask_uniform
from ..pruning.snip import snip_mask
from ..pruning.synflow import synflow_mask
from ..sparse.mask import MaskSet
from .common import pretrain_on_server

__all__ = ["SNIPBaseline", "SynFlowBaseline", "FLPQSUBaseline"]


class _ServerPruneBaseline(FederatedMethod):
    """Template: pretrain, server-prune once, fine-tune federated."""

    method_name = "server_prune"
    needs_round_states = False  # mask is frozen after setup

    def __init__(
        self, target_density: float, pretrain_epochs: int = 2
    ) -> None:
        if not 0.0 < target_density <= 1.0:
            raise ValueError(
                f"target_density must be in (0, 1], got {target_density}"
            )
        self.target_density = target_density
        self.pretrain_epochs = pretrain_epochs

    def compute_mask(
        self, ctx: FederatedContext, public_data: Dataset
    ) -> MaskSet:
        raise NotImplementedError

    def setup(self, ctx: FederatedContext, public_data: Dataset) -> None:
        pretrain_on_server(ctx, public_data, self.pretrain_epochs)
        masks = self.compute_mask(ctx, public_data)
        ctx.install_masks(masks)
        self._layer_densities = masks.layer_densities()

    def finalize(self, result: RunResult, ctx: FederatedContext) -> None:
        result.metadata["layer_densities"] = self._layer_densities
        super().finalize(result, ctx)


class SNIPBaseline(_ServerPruneBaseline):
    """SNIP (Lee et al., 2019) on the server's public data."""

    method_name = "snip"

    def __init__(
        self,
        target_density: float,
        pretrain_epochs: int = 2,
        iterations: int = 5,
    ) -> None:
        super().__init__(target_density, pretrain_epochs)
        self.iterations = iterations

    def compute_mask(
        self, ctx: FederatedContext, public_data: Dataset
    ) -> MaskSet:
        return snip_mask(
            ctx.model,
            public_data,
            self.target_density,
            iterations=self.iterations,
            batch_size=ctx.config.batch_size,
        )


class SynFlowBaseline(_ServerPruneBaseline):
    """SynFlow (Tanaka et al., 2020), data-free server pruning."""

    method_name = "synflow"

    def __init__(
        self,
        target_density: float,
        pretrain_epochs: int = 2,
        iterations: int = 20,
    ) -> None:
        super().__init__(target_density, pretrain_epochs)
        self.iterations = iterations

    def compute_mask(
        self, ctx: FederatedContext, public_data: Dataset
    ) -> MaskSet:
        return synflow_mask(
            ctx.model,
            ctx.test_data.image_shape,
            self.target_density,
            iterations=self.iterations,
        )


class FLPQSUBaseline(_ServerPruneBaseline):
    """FL-PQSU's pruning stage (Xu et al., 2021): one-shot L1/magnitude."""

    method_name = "fl-pqsu"

    def compute_mask(
        self, ctx: FederatedContext, public_data: Dataset
    ) -> MaskSet:
        return magnitude_mask_uniform(ctx.model, self.target_density)
