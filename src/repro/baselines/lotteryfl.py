"""LotteryFL (Li et al., 2021), adapted to a single global structure.

LotteryFL hunts lottery tickets: train (dense), prune a fixed fraction
of the smallest-magnitude weights, rewind the survivors to their
initial values, repeat until the target density. As in the paper, we
prune the *global* model so every device shares one structure (the
original is personalized).

Devices train whatever the current mask is — which starts dense — so
the method's FLOPs and memory stay at the dense level (Table I reports
1x for LotteryFL at every target density).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..fl.simulation import FederatedContext
from ..methods import FederatedMethod
from ..metrics.flops import training_flops_per_sample
from ..metrics.memory import device_memory_footprint
from ..metrics.tracker import RunResult
from ..pruning.magnitude import magnitude_mask_global
from ..pruning.schedule import PruningSchedule
from ..sparse.mask import MaskSet
from .common import pretrain_on_server

__all__ = ["LotteryFLBaseline"]


class LotteryFLBaseline(FederatedMethod):
    """Iterative magnitude pruning with rewinding, on the global model."""

    method_name = "lotteryfl"

    def __init__(
        self,
        target_density: float,
        schedule: PruningSchedule | None = None,
        prune_rate: float = 0.2,
        pretrain_epochs: int = 2,
    ) -> None:
        if not 0.0 < target_density <= 1.0:
            raise ValueError(
                f"target_density must be in (0, 1], got {target_density}"
            )
        if not 0.0 < prune_rate < 1.0:
            raise ValueError(
                f"prune_rate must be in (0, 1), got {prune_rate}"
            )
        self.target_density = target_density
        self.schedule = schedule if schedule is not None else PruningSchedule()
        self.prune_rate = prune_rate
        self.pretrain_epochs = pretrain_epochs

    def setup(self, ctx: FederatedContext, public_data: Dataset) -> None:
        """Pretrain and snapshot the rewind target."""
        pretrain_on_server(ctx, public_data, self.pretrain_epochs)
        # Rewind target: the weights right after pretraining (the
        # "initialization" every ticket is rewound to).
        self._initial_state = {
            k: v.copy() for k, v in ctx.server.state.items()
        }

    needs_round_states = False  # the hook prunes from the global state

    def round_hook(
        self, round_index: int, states: list[dict[str, np.ndarray]]
    ) -> float:
        """One lottery iteration whenever the schedule fires."""
        del states
        ctx = self.ctx
        if not self.schedule.is_pruning_round(round_index):
            return 0.0
        if ctx.server.masks.density <= self.target_density:
            return 0.0
        next_density = max(
            self.target_density,
            ctx.server.masks.density * (1.0 - self.prune_rate),
        )
        self._prune_and_rewind(ctx, next_density, self._initial_state)
        return 0.0

    def finalize(self, result: RunResult, ctx: FederatedContext) -> None:
        # LotteryFL's device cost is dominated by the dense phases:
        # report the dense footprint and dense per-round FLOPs ceiling.
        dense_flops = training_flops_per_sample(ctx.profile, None)
        result.max_training_flops_per_round = (
            dense_flops * ctx.config.local_epochs * max(ctx.sample_counts)
        )
        dense_masks = MaskSet.dense(ctx.model)
        result.memory_footprint_bytes = device_memory_footprint(
            ctx.model, dense_masks
        ).total_bytes

    def _prune_and_rewind(
        self,
        ctx: FederatedContext,
        density: float,
        initial_state: dict[str, np.ndarray],
    ) -> None:
        """One lottery iteration: magnitude prune, rewind survivors."""
        ctx.server.load_into_model()
        new_masks = magnitude_mask_global(ctx.model, density)
        rewound = {}
        for name, value in ctx.server.state.items():
            rewound[name] = initial_state[name].copy()
        ctx.reset_model_state(rewound)
        ctx.server.set_masks(new_masks)
