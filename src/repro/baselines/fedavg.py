"""FedAvg: the dense upper bound (paper Table I, density 1)."""

from __future__ import annotations

from ..data.dataset import Dataset
from ..fl.simulation import FederatedContext
from ..metrics.tracker import RunResult
from .common import finalize_memory, pretrain_on_server, run_training_rounds

__all__ = ["FedAvgBaseline"]


class FedAvgBaseline:
    """Plain dense federated averaging (McMahan et al., 2017)."""

    method_name = "fedavg"

    def __init__(self, pretrain_epochs: int = 2) -> None:
        self.pretrain_epochs = pretrain_epochs

    def run(self, ctx: FederatedContext, public_data: Dataset) -> RunResult:
        """Pretrain on the public data, then run dense FedAvg rounds."""
        result = ctx.new_result(self.method_name, target_density=1.0)
        pretrain_on_server(ctx, public_data, self.pretrain_epochs)
        run_training_rounds(ctx, result)
        finalize_memory(result, ctx)
        return result
