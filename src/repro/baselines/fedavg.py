"""FedAvg: the dense upper bound (paper Table I, density 1)."""

from __future__ import annotations

from ..data.dataset import Dataset
from ..fl.simulation import FederatedContext
from ..methods import FederatedMethod
from .common import pretrain_on_server

__all__ = ["FedAvgBaseline"]


class FedAvgBaseline(FederatedMethod):
    """Plain dense federated averaging (McMahan et al., 2017)."""

    method_name = "fedavg"
    target_density = 1.0
    needs_round_states = False  # no round hook reads the uploads

    def __init__(self, pretrain_epochs: int = 2) -> None:
        self.pretrain_epochs = pretrain_epochs

    def setup(self, ctx: FederatedContext, public_data: Dataset) -> None:
        pretrain_on_server(ctx, public_data, self.pretrain_epochs)
