"""FedDST (Bibikar et al., 2022): federated dynamic sparse training.

The server random-prunes an initial mask; devices adjust their own
masks locally RigL-style (train, grow by local gradient magnitude, drop
by weight magnitude, then fine-tune the regrown weights before
uploading); the server merges the heterogeneous sparse uploads by
*sparse aggregation* (per-position average over the devices that kept
the position) and magnitude-prunes back to the target density.

Compared with FedTiny, the mask adjustment happens on-device with dense
per-layer gradients (extra compute, the straggling risk the paper
notes) and the coarse structure is never de-biased.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..fl.aggregation import normalized_weights
from ..fl.simulation import FederatedContext
from ..methods import FederatedMethod
from ..metrics.flops import training_flops_per_sample
from ..metrics.tracker import RunResult
from ..pruning.magnitude import random_mask_uniform
from ..pruning.schedule import PruningSchedule
from ..pruning.scores import global_score_mask
from ..sparse.mask import MaskSet, prunable_parameters
from .common import finalize_memory, pretrain_on_server

__all__ = ["FedDSTBaseline", "sparse_aggregate"]


def sparse_aggregate(
    states: list[dict[str, np.ndarray]],
    masks: list[MaskSet],
    sample_counts: list[int],
    prunable_names: set[str],
) -> dict[str, np.ndarray]:
    """FedDST's sparse aggregation.

    Prunable parameters average only over the devices whose local mask
    kept each position; everything else is plain FedAvg.
    """
    if not (len(states) == len(masks) == len(sample_counts)):
        raise ValueError("states, masks and sample_counts length mismatch")
    weights = normalized_weights(sample_counts)
    aggregated: dict[str, np.ndarray] = {}
    for key in states[0]:
        name = key
        if name in prunable_names:
            numerator = np.zeros_like(states[0][key], dtype=np.float64)
            denominator = np.zeros_like(states[0][key], dtype=np.float64)
            for weight, state, mask_set in zip(weights, states, masks):
                mask = mask_set[name].astype(np.float64)
                numerator += weight * state[key] * mask
                denominator += weight * mask
            with np.errstate(invalid="ignore", divide="ignore"):
                value = np.where(
                    denominator > 0.0, numerator / denominator, 0.0
                )
            aggregated[key] = value.astype(np.float32)
        else:
            acc = np.zeros_like(states[0][key], dtype=np.float64)
            for weight, state in zip(weights, states):
                acc += weight * state[key]
            aggregated[key] = acc.astype(np.float32)
    return aggregated


class FedDSTBaseline(FederatedMethod):
    """On-device mask adjustment + server sparse aggregation."""

    method_name = "feddst"

    def __init__(
        self,
        target_density: float,
        schedule: PruningSchedule | None = None,
        pretrain_epochs: int = 2,
        train_epochs_before_adjust: int | None = None,
        finetune_epochs_after_adjust: int | None = None,
        grad_batch_size: int = 64,
        mask_seed: int = 23,
        mask_init: str = "uniform",
    ) -> None:
        if not 0.0 < target_density <= 1.0:
            raise ValueError(
                f"target_density must be in (0, 1], got {target_density}"
            )
        if mask_init not in ("uniform", "erk"):
            raise ValueError(
                f"mask_init must be 'uniform' or 'erk', got {mask_init!r}"
            )
        self.target_density = target_density
        self.schedule = schedule if schedule is not None else PruningSchedule()
        self.pretrain_epochs = pretrain_epochs
        # The paper splits the standard 5 local epochs into 3 train +
        # 2 fine-tune on adjustment rounds. ``None`` derives the same
        # 60/40 split from the run's actual local-epoch budget so
        # FedDST never gets more local compute than the other methods.
        self.train_epochs_before_adjust = train_epochs_before_adjust
        self.finetune_epochs_after_adjust = finetune_epochs_after_adjust
        self.grad_batch_size = grad_batch_size
        self.mask_seed = mask_seed
        # The paper's baseline setting is uniform; "erk" restores
        # FedDST's native Erdős–Rényi-Kernel allocation.
        self.mask_init = mask_init

    def _epoch_split(self, local_epochs: int) -> tuple[int, int]:
        """(train, fine-tune) epochs on an adjustment round."""
        train = self.train_epochs_before_adjust
        if train is None:
            train = max(1, int(round(0.6 * local_epochs)))
        finetune = self.finetune_epochs_after_adjust
        if finetune is None:
            finetune = max(0, local_epochs - train)
        return train, finetune

    def setup(self, ctx: FederatedContext, public_data: Dataset) -> None:
        """Pretrain and random-prune the initial global mask."""
        pretrain_on_server(ctx, public_data, self.pretrain_epochs)
        mask_rng = np.random.default_rng(self.mask_seed)
        if self.mask_init == "erk":
            from ..pruning.erk import random_mask_erk

            initial = random_mask_erk(
                ctx.model, self.target_density, mask_rng
            )
        else:
            initial = random_mask_uniform(
                ctx.model, self.target_density, mask_rng
            )
        ctx.install_masks(initial)
        self._pending_extra_flops = 0.0

    def train_round(
        self, ctx: FederatedContext, round_index: int
    ) -> list[dict[str, np.ndarray]]:
        """FedDST replaces the plain FedAvg round by its own
        train / adjust / fine-tune round when the schedule fires."""
        if self.schedule.is_pruning_round(round_index):
            states, self._pending_extra_flops = self._adjustment_round(
                ctx, round_index
            )
            return states
        self._pending_extra_flops = 0.0
        # The round hook only forwards the pending adjustment FLOPs, so
        # plain rounds can keep their uploads packed.
        return ctx.run_fedavg_round(need_states=False)

    def round_hook(
        self, round_index: int, states: list[dict[str, np.ndarray]]
    ) -> float:
        del round_index, states
        return self._pending_extra_flops

    def finalize(self, result: RunResult, ctx: FederatedContext) -> None:
        finalize_memory(result, ctx, per_layer_dense_grad=True)

    # ------------------------------------------------------------------
    # The FedDST adjustment round (replaces the plain FedAvg result)
    # ------------------------------------------------------------------
    def _adjustment_round(
        self, ctx: FederatedContext, round_index: int
    ) -> tuple[list[dict[str, np.ndarray]], float]:
        cfg = ctx.config
        train_epochs, finetune_epochs = self._epoch_split(cfg.local_epochs)
        states: list[dict[str, np.ndarray]] = []
        local_masks: list[MaskSet] = []
        prunable_names = {
            name for name, _ in prunable_parameters(ctx.model)
        }
        for client in ctx.clients:
            ctx.server.load_into_model()
            client.train(
                ctx.model,
                epochs=train_epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
            )
            adjusted = self._local_mask_adjustment(
                ctx, client, round_index
            )
            adjusted.apply(ctx.model)
            if finetune_epochs > 0:
                train_result = client.train(
                    ctx.model,
                    epochs=finetune_epochs,
                    batch_size=cfg.batch_size,
                    lr=cfg.lr,
                    momentum=cfg.momentum,
                    weight_decay=cfg.weight_decay,
                )
                states.append(train_result.state)
            else:
                from ..fl.state import get_state

                states.append(get_state(ctx.model))
            local_masks.append(adjusted)
            bytes_each = ctx.model_exchange_bytes()
            ctx.comm.record_download(bytes_each)
            ctx.comm.record_upload(bytes_each)

        merged = sparse_aggregate(
            states, local_masks, ctx.sample_counts, prunable_names
        )
        ctx.server.commit_state(merged)
        # Magnitude-prune back to the target density over the union.
        scores = {
            name: np.abs(merged[name]) for name in prunable_names
        }
        new_masks = global_score_mask(ctx.model, scores, self.target_density)
        ctx.server.set_masks(new_masks)

        all_layers = prunable_names
        extra_flops = training_flops_per_sample(
            ctx.profile, ctx.server.masks, dense_grad_layers=all_layers
        ) * min(self.grad_batch_size, max(ctx.sample_counts))
        return states, extra_flops

    def _local_mask_adjustment(
        self, ctx: FederatedContext, client, round_index: int
    ) -> MaskSet:
        """RigL-style local grow/drop on every prunable layer."""
        grads = client.compute_dense_gradients(
            ctx.model, self.grad_batch_size
        )
        masks = MaskSet.from_model(ctx.model)
        params = dict(prunable_parameters(ctx.model))
        for name, param in params.items():
            mask_flat = masks[name].reshape(-1).copy()
            active = int(mask_flat.sum())
            pruned = mask_flat.size - active
            count = self.schedule.adjustment_count(round_index, 1, active)
            count = min(count, pruned, active)
            if count <= 0:
                continue
            grad_flat = np.abs(grads[name].reshape(-1))
            weight_flat = np.abs(param.data.reshape(-1))
            pruned_idx = np.flatnonzero(~mask_flat)
            grow = pruned_idx[
                np.argsort(-grad_flat[pruned_idx], kind="stable")[:count]
            ]
            active_idx = np.flatnonzero(mask_flat)
            drop = active_idx[
                np.argsort(weight_flat[active_idx], kind="stable")[:count]
            ]
            mask_flat[grow] = True
            mask_flat[drop] = False
            masks[name] = mask_flat.reshape(masks[name].shape)
        return masks
