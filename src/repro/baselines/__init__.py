"""Baseline methods the paper compares FedTiny against."""

from .feddst import FedDSTBaseline, sparse_aggregate
from .fedavg import FedAvgBaseline
from .lotteryfl import LotteryFLBaseline
from .prunefl import PruneFLBaseline
from .server_prune import FLPQSUBaseline, SNIPBaseline, SynFlowBaseline
from .small_model import SmallModelBaseline, build_small_model_context

__all__ = [
    "FLPQSUBaseline",
    "FedAvgBaseline",
    "FedDSTBaseline",
    "LotteryFLBaseline",
    "PruneFLBaseline",
    "SNIPBaseline",
    "SmallModelBaseline",
    "SynFlowBaseline",
    "build_small_model_context",
    "sparse_aggregate",
]
