"""PruneFL (Jiang et al., 2022), adapted to the paper's setting.

PruneFL starts from a server-side coarse-pruned model and adaptively
re-selects the mask during federated training based on *full-size*
averaged gradients: every device computes and uploads the dense
gradient of every prunable parameter, and the server keeps the
positions with the largest squared aggregated gradient plus current
weight magnitude.

That dense importance state is precisely what makes PruneFL expensive
(paper Table I: ~0.34x FLOPs and a near-dense memory footprint even at
density 0.001), which our cost accounting reproduces:

- extra FLOPs per adjustment round: a backward pass whose weight
  gradients are dense for every layer;
- device memory: dense importance scores over all prunable parameters.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..fl.aggregation import normalized_weights
from ..fl.simulation import FederatedContext
from ..fl.state import set_state
from ..methods import FederatedMethod
from ..metrics.flops import training_flops_per_sample
from ..metrics.tracker import RunResult
from ..pruning.magnitude import magnitude_mask_uniform
from ..pruning.schedule import PruningSchedule
from ..pruning.scores import global_score_mask
from ..sparse.mask import prunable_parameters
from .common import finalize_memory, pretrain_on_server

__all__ = ["PruneFLBaseline"]


class PruneFLBaseline(FederatedMethod):
    """Initial server pruning + full-gradient adaptive mask updates."""

    method_name = "prunefl"

    def __init__(
        self,
        target_density: float,
        schedule: PruningSchedule | None = None,
        pretrain_epochs: int = 2,
        grad_batch_size: int = 64,
    ) -> None:
        if not 0.0 < target_density <= 1.0:
            raise ValueError(
                f"target_density must be in (0, 1], got {target_density}"
            )
        self.target_density = target_density
        self.schedule = schedule if schedule is not None else PruningSchedule()
        self.pretrain_epochs = pretrain_epochs
        self.grad_batch_size = grad_batch_size

    def setup(self, ctx: FederatedContext, public_data: Dataset) -> None:
        """Server-prune once; the round hook adapts the mask afterwards."""
        pretrain_on_server(ctx, public_data, self.pretrain_epochs)
        ctx.install_masks(
            magnitude_mask_uniform(ctx.model, self.target_density)
        )

    def round_hook(
        self, round_index: int, states: list[dict[str, np.ndarray]]
    ) -> float:
        if not self.schedule.is_pruning_round(round_index):
            return 0.0
        ctx = self.ctx
        self._adaptive_reselect(ctx, states)
        # Cost of the dense gradient pass on one batch per device.
        all_layers = {
            name for name, _ in prunable_parameters(ctx.model)
        }
        return training_flops_per_sample(
            ctx.profile, ctx.server.masks, dense_grad_layers=all_layers
        ) * min(self.grad_batch_size, max(ctx.sample_counts))

    def finalize(self, result: RunResult, ctx: FederatedContext) -> None:
        finalize_memory(result, ctx, dense_importance_scores=True)

    def _adaptive_reselect(
        self, ctx: FederatedContext, states: list[dict[str, np.ndarray]]
    ) -> None:
        """Re-pick the global mask from full-size aggregated gradients."""
        participants = ctx.last_participants
        weights = normalized_weights(
            [client.num_samples for client in participants]
        )
        aggregated: dict[str, np.ndarray] | None = None
        for weight, (client, state) in zip(
            weights, zip(participants, states)
        ):
            set_state(ctx.model, state)
            grads = client.compute_dense_gradients(
                ctx.model, self.grad_batch_size
            )
            if aggregated is None:
                aggregated = {
                    name: weight * grad for name, grad in grads.items()
                }
            else:
                for name, grad in grads.items():
                    aggregated[name] += weight * grad
        assert aggregated is not None
        # PruneFL importance: squared aggregated gradient, plus the
        # current weight magnitude so established weights persist.
        importance = {}
        for name, param in prunable_parameters(ctx.model):
            grad_term = aggregated[name].astype(np.float64) ** 2
            weight_term = np.abs(
                ctx.server.state[name].astype(np.float64)
            )
            importance[name] = grad_term + weight_term
        new_masks = global_score_mask(
            ctx.model, importance, self.target_density
        )
        ctx.server.set_masks(new_masks)
