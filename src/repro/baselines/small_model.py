"""The dense-small-model baseline (paper Section IV-G).

"Just train a small dense model of the same size" — a three-conv CNN
whose parameter count matches the pruned big model's active parameter
count, trained with plain FedAvg. The paper's Tables IV and V show this
is competitive with server-prune baselines but loses to FedTiny.
"""

from __future__ import annotations

from ..data.dataset import Dataset
from ..fl.simulation import FederatedContext, FLConfig
from ..methods import FederatedMethod
from ..metrics.tracker import RunResult
from ..nn.models.small_cnn import small_cnn_matching_params
from .common import pretrain_on_server

__all__ = ["SmallModelBaseline", "build_small_model_context"]


def build_small_model_context(
    reference_ctx: FederatedContext,
    target_density: float,
    train_data: Dataset,
    test_data: Dataset,
    config: FLConfig,
) -> FederatedContext:
    """A fresh context whose model is a parameter-matched SmallCNN.

    The small model gets ``target_density * |reference model|``
    parameters, matching the paper's "similar number of parameters to
    ResNet-18 at density d" setup.
    """
    target_params = max(
        1, int(round(target_density * reference_ctx.model.num_parameters()))
    )
    model = small_cnn_matching_params(
        target_params,
        num_classes=test_data.num_classes,
        in_channels=test_data.image_shape[0],
    )
    return FederatedContext(
        model,
        train_data,
        test_data,
        config,
        dataset_name=reference_ctx.dataset_name,
        model_name=f"small_cnn[{model.num_parameters()}p]",
    )


class SmallModelBaseline(FederatedMethod):
    """Dense FedAvg on a parameter-matched small CNN.

    The context passed to :meth:`run` must hold the small model already
    (see :func:`build_small_model_context`; the experiment runner swaps
    the context for methods whose spec sets ``replaces_model``).
    """

    method_name = "small_model"
    needs_round_states = False  # no round hook reads the uploads

    def __init__(
        self, target_density: float, pretrain_epochs: int = 2
    ) -> None:
        self.target_density = target_density
        self.pretrain_epochs = pretrain_epochs

    def setup(self, ctx: FederatedContext, public_data: Dataset) -> None:
        pretrain_on_server(ctx, public_data, self.pretrain_epochs)

    def finalize(self, result: RunResult, ctx: FederatedContext) -> None:
        result.metadata["model_parameters"] = ctx.model.num_parameters()
        super().finalize(result, ctx)
