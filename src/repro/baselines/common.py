"""Shared plumbing for baseline methods."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.dataset import Dataset
from ..fl.simulation import FederatedContext
from ..fl.state import get_state
from ..fl.training import server_pretrain
from ..metrics.flops import training_flops_per_sample
from ..metrics.memory import device_memory_footprint
from ..metrics.tracker import RunResult

__all__ = ["pretrain_on_server", "run_training_rounds", "finalize_memory"]

RoundHook = Callable[[int, list[dict[str, np.ndarray]]], float]


def pretrain_on_server(
    ctx: FederatedContext, public_data: Dataset, epochs: int
) -> None:
    """Pretrain the global model on the public one-shot dataset D_s."""
    server_pretrain(
        ctx.model,
        public_data,
        epochs=epochs,
        batch_size=ctx.config.batch_size,
        lr=ctx.config.lr,
        seed=ctx.config.seed,
    )
    ctx.server.commit_state(get_state(ctx.model))


def run_training_rounds(
    ctx: FederatedContext,
    result: RunResult,
    round_hook: RoundHook | None = None,
) -> None:
    """The shared federated loop: train, optionally adjust, record.

    ``round_hook`` runs after aggregation with the per-client uploaded
    states and returns any extra per-device FLOPs the method spent that
    round (mask-adjustment passes etc.).

    Kept for ad-hoc experiment scripts; methods themselves now inherit
    the same loop from :class:`repro.methods.FederatedMethod`.
    """
    max_samples = max(ctx.sample_counts)
    for round_index in range(1, ctx.config.rounds + 1):
        base_flops = (
            training_flops_per_sample(ctx.profile, ctx.server.masks)
            * ctx.config.local_epochs
            * max_samples
        )
        states = ctx.run_fedavg_round()
        extra_flops = 0.0
        if round_hook is not None:
            extra_flops = round_hook(round_index, states)
        ctx.record_round(result, round_index, base_flops + extra_flops)


def finalize_memory(
    result: RunResult,
    ctx: FederatedContext,
    dense_importance_scores: bool = False,
    per_layer_dense_grad: bool = False,
    topk_buffer_entries: int = 0,
) -> None:
    """Record the method's device memory footprint on the result."""
    footprint = device_memory_footprint(
        ctx.model,
        ctx.server.masks,
        dense_importance_scores=dense_importance_scores,
        per_layer_dense_grad=per_layer_dense_grad,
        topk_buffer_entries=topk_buffer_entries,
    )
    result.memory_footprint_bytes = footprint.total_bytes
