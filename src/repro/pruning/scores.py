"""Shared machinery for score-based pruning.

Every pruning algorithm reduces to: compute a saliency score per
prunable weight, then keep the top-scoring weights subject to a density
budget, either globally or per layer. This module owns that budget
arithmetic so the individual algorithms stay small.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..sparse.mask import MaskSet, prunable_parameters

__all__ = [
    "topk_bool_mask",
    "global_score_mask",
    "layerwise_density_mask",
    "uniform_density_mask",
]


def topk_bool_mask(scores: np.ndarray, keep: int) -> np.ndarray:
    """Boolean mask keeping the ``keep`` largest entries of ``scores``.

    Ties are broken by argpartition order, which is deterministic for a
    fixed input.
    """
    flat = scores.reshape(-1)
    keep = int(keep)
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    mask = np.zeros(flat.size, dtype=bool)
    if keep == 0:
        return mask.reshape(scores.shape)
    if keep >= flat.size:
        return np.ones(scores.shape, dtype=bool)
    top = np.argpartition(flat, -keep)[-keep:]
    mask[top] = True
    return mask.reshape(scores.shape)


def global_score_mask(
    model: Module,
    scores: dict[str, np.ndarray],
    density: float,
    protected: set[str] | frozenset[str] = frozenset(),
) -> MaskSet:
    """Keep the globally top-scoring weights at the target density.

    Protected layers are kept fully dense and their parameters count
    against the budget; if they alone exceed the budget every remaining
    layer keeps zero weights (mirroring how a fixed dense input/output
    layer eats into an ultra-low budget).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    params = prunable_parameters(model)
    names = [n for n, _ in params]
    if set(scores) != set(names) - set(protected) and set(scores) != set(
        names
    ):
        missing = (set(names) - set(protected)) - set(scores)
        if missing:
            raise KeyError(f"missing scores for layers: {sorted(missing)}")
    total = sum(p.size for _, p in params)
    budget = int(round(density * total))
    protected_size = sum(p.size for n, p in params if n in protected)
    remaining_budget = max(0, budget - protected_size)

    free_names = [n for n, _ in params if n not in protected]
    if free_names:
        flat_scores = np.concatenate(
            [np.abs(scores[n]).reshape(-1) for n in free_names]
        )
        keep_flat = topk_bool_mask(flat_scores, remaining_budget)
    masks: dict[str, np.ndarray] = {}
    offset = 0
    shapes = {n: p.shape for n, p in params}
    for name in names:
        if name in protected:
            masks[name] = np.ones(shapes[name], dtype=bool)
            continue
        size = int(np.prod(shapes[name]))
        masks[name] = keep_flat[offset : offset + size].reshape(shapes[name])
        offset += size
    return MaskSet(masks)


def layerwise_density_mask(
    model: Module,
    scores: dict[str, np.ndarray],
    layer_densities: dict[str, float],
    min_keep: int = 1,
) -> MaskSet:
    """Keep the per-layer top-scoring weights at per-layer densities.

    ``min_keep`` guards against fully disconnecting a layer, which a
    rounded ultra-low density would otherwise do for every layer at
    once (global methods are allowed to disconnect layers; uniform
    layer-wise baselines are not, or nothing trains at all).
    """
    masks: dict[str, np.ndarray] = {}
    for name, param in prunable_parameters(model):
        density = layer_densities.get(name, 1.0)
        if not 0.0 <= density <= 1.0:
            raise ValueError(
                f"layer density for {name!r} must be in [0, 1], got {density}"
            )
        keep = int(round(density * param.size))
        keep = max(min(min_keep, param.size), keep)
        masks[name] = topk_bool_mask(np.abs(scores[name]), keep)
    return MaskSet(masks)


def uniform_density_mask(
    model: Module,
    scores: dict[str, np.ndarray],
    density: float,
    protected: set[str] | frozenset[str] = frozenset(),
) -> MaskSet:
    """Same density for every layer (the paper's baseline setting)."""
    densities = {}
    for name, _ in prunable_parameters(model):
        densities[name] = 1.0 if name in protected else density
    return layerwise_density_mask(model, scores, densities)
