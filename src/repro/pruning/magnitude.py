"""Magnitude pruning (|w| saliency) and random pruning."""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..sparse.mask import MaskSet, prunable_parameters
from .scores import (
    global_score_mask,
    layerwise_density_mask,
    uniform_density_mask,
)

__all__ = [
    "weight_magnitude_scores",
    "magnitude_mask_global",
    "magnitude_mask_uniform",
    "magnitude_mask_layerwise",
    "random_scores",
    "random_mask_uniform",
]


def weight_magnitude_scores(model: Module) -> dict[str, np.ndarray]:
    """|w| per prunable parameter (equals the L1-norm saliency of
    FL-PQSU's unstructured variant)."""
    return {
        name: np.abs(param.data) for name, param in prunable_parameters(model)
    }


def magnitude_mask_global(
    model: Module,
    density: float,
    protected: set[str] | frozenset[str] = frozenset(),
) -> MaskSet:
    """Keep the globally largest weights at the target density."""
    return global_score_mask(
        model, weight_magnitude_scores(model), density, protected
    )


def magnitude_mask_uniform(
    model: Module,
    density: float,
    protected: set[str] | frozenset[str] = frozenset(),
) -> MaskSet:
    """Keep the per-layer largest weights at one uniform density."""
    return uniform_density_mask(
        model, weight_magnitude_scores(model), density, protected
    )


def magnitude_mask_layerwise(
    model: Module, layer_densities: dict[str, float]
) -> MaskSet:
    """Keep the per-layer largest weights at per-layer densities."""
    return layerwise_density_mask(
        model, weight_magnitude_scores(model), layer_densities
    )


def random_scores(
    model: Module, rng: np.random.Generator
) -> dict[str, np.ndarray]:
    """Uniform random saliency (random pruning)."""
    return {
        name: rng.random(param.shape)
        for name, param in prunable_parameters(model)
    }


def random_mask_uniform(
    model: Module,
    density: float,
    rng: np.random.Generator,
    protected: set[str] | frozenset[str] = frozenset(),
) -> MaskSet:
    """Random mask at one uniform per-layer density (FedDST's init)."""
    return uniform_density_mask(
        model, random_scores(model, rng), density, protected
    )
