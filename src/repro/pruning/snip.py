"""SNIP: single-shot network pruning by connection sensitivity.

Lee et al. (ICLR 2019), used by the paper as a server-side
pruning-at-initialization baseline. The saliency of a weight is
``|g * w|``, the first-order sensitivity of the loss to removing the
connection, computed on a (public, server-side) batch. Following the
paper's setup we apply it *iteratively* with an exponential density
schedule rather than one-shot, as recommended by the SynFlow paper.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..nn.loss import CrossEntropyLoss
from ..nn.module import Module
from ..sparse.mask import MaskSet, prunable_parameters
from .scores import global_score_mask

__all__ = ["snip_scores", "snip_mask"]


def snip_scores(
    model: Module, images: np.ndarray, labels: np.ndarray
) -> dict[str, np.ndarray]:
    """Connection sensitivity ``|g * w|`` on one batch.

    Gradients are taken with respect to the effective weights, so
    already-pruned connections score zero and stay pruned across
    iterations.
    """
    loss_fn = CrossEntropyLoss()
    was_training = model.training
    model.eval()  # keep BN statistics frozen during scoring
    model.zero_grad()
    loss_fn(model(images), labels)
    model.backward(loss_fn.backward())
    model.train(was_training)
    return {
        name: np.abs(param.grad * param.effective)
        for name, param in prunable_parameters(model)
    }


def snip_mask(
    model: Module,
    dataset: Dataset,
    density: float,
    iterations: int = 5,
    batch_size: int = 128,
    protected: set[str] | frozenset[str] = frozenset(),
) -> MaskSet:
    """Iterative SNIP to the target density with an exponential schedule.

    The model's weights are not modified; masks are applied temporarily
    between scoring iterations and removed before returning.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    params = prunable_parameters(model)
    saved_masks = [(p, None if p.mask is None else p.mask.copy())
                   for _, p in params]
    images, labels = dataset.first_batch(batch_size)
    try:
        mask = MaskSet.dense(model)
        for step in range(1, iterations + 1):
            step_density = density ** (step / iterations)
            for name, param in params:
                param.set_mask(mask[name])
            scores = snip_scores(model, images, labels)
            mask = global_score_mask(model, scores, step_density, protected)
        return mask
    finally:
        for param, saved in saved_masks:
            param.mask = saved
