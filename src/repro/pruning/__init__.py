"""Pruning algorithms, candidate pools, schedules and block partitions."""

from .blocks import DEFAULT_NUM_BLOCKS, even_blocks, model_blocks
from .candidate_pool import Candidate, generate_candidate_pool
from .erk import erk_densities, erk_mask, random_mask_erk
from .magnitude import (
    magnitude_mask_global,
    magnitude_mask_layerwise,
    magnitude_mask_uniform,
    random_mask_uniform,
    random_scores,
    weight_magnitude_scores,
)
from .protection import io_layer_names, resolve_protected_layers
from .schedule import PruningSchedule, cosine_adjustment_count
from .scores import (
    global_score_mask,
    layerwise_density_mask,
    topk_bool_mask,
    uniform_density_mask,
)
from .snip import snip_mask, snip_scores
from .synflow import synflow_mask, synflow_scores

__all__ = [
    "Candidate",
    "DEFAULT_NUM_BLOCKS",
    "PruningSchedule",
    "cosine_adjustment_count",
    "erk_densities",
    "erk_mask",
    "even_blocks",
    "generate_candidate_pool",
    "global_score_mask",
    "io_layer_names",
    "layerwise_density_mask",
    "magnitude_mask_global",
    "magnitude_mask_layerwise",
    "magnitude_mask_uniform",
    "model_blocks",
    "random_mask_erk",
    "random_mask_uniform",
    "random_scores",
    "resolve_protected_layers",
    "snip_mask",
    "snip_scores",
    "synflow_mask",
    "synflow_scores",
    "topk_bool_mask",
    "uniform_density_mask",
    "weight_magnitude_scores",
]
