"""Pruning schedules: how many weights to grow/prune, and where.

The paper's adjustment count for layer l at iteration t is

    a_t^l = 0.15 * (1 + cos(t * pi / (Rstop * E))) * n_l

where ``n_l`` is the number of unpruned parameters in the layer, E is
the local iterations per round, and pruning stops after round Rstop
(Section IV-A2). Granularity (layer / block / entire model per pruning
round) and ordering (backward from the output, or forward) are the
subject of the paper's Table III ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["cosine_adjustment_count", "PruningSchedule"]


def cosine_adjustment_count(
    iteration: int,
    stop_iteration: int,
    active_count: int,
    fraction: float = 0.15,
) -> int:
    """Number of weights to grow (and prune) in one layer, a_t^l."""
    if stop_iteration <= 0:
        raise ValueError(
            f"stop_iteration must be positive, got {stop_iteration}"
        )
    if iteration < 0:
        raise ValueError(f"iteration must be >= 0, got {iteration}")
    if active_count < 0:
        raise ValueError(f"active_count must be >= 0, got {active_count}")
    if iteration > stop_iteration:
        return 0
    scale = fraction * (1.0 + math.cos(math.pi * iteration / stop_iteration))
    return int(round(scale * active_count))


@dataclass(frozen=True)
class PruningSchedule:
    """When to prune, which layers, and how aggressively.

    Attributes:
        delta_rounds: rounds of fine-tuning between two pruning
            operations (the paper's delta-R, default 10).
        stop_round: last round at which pruning may happen (Rstop,
            default 100); afterwards only fine-tuning continues.
        granularity: "layer", "block", or "entire" — how much of the
            model is adjusted per pruning round.
        backward_order: iterate groups from the output toward the input
            (the paper's best setting, marked "(b)" in Table III).
        fraction: the 0.15 coefficient of the cosine count.
    """

    delta_rounds: int = 10
    stop_round: int = 100
    granularity: str = "block"
    backward_order: bool = True
    fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.delta_rounds < 1:
            raise ValueError(
                f"delta_rounds must be >= 1, got {self.delta_rounds}"
            )
        if self.stop_round < 1:
            raise ValueError(f"stop_round must be >= 1, got {self.stop_round}")
        if self.granularity not in ("layer", "block", "entire"):
            raise ValueError(
                "granularity must be 'layer', 'block' or 'entire', got "
                f"{self.granularity!r}"
            )
        if not 0.0 < self.fraction <= 0.5:
            raise ValueError(
                f"fraction must be in (0, 0.5], got {self.fraction}"
            )

    def is_pruning_round(self, round_index: int) -> bool:
        """True when mask adjustment happens after this round."""
        if round_index > self.stop_round:
            return False
        return round_index % self.delta_rounds == 0

    def groups_for(self, groups: list[list[str]]) -> list[list[str]]:
        """Pruning-target groups in schedule order.

        ``groups`` is the model's block partition (lists of layer
        names). For "layer" granularity each layer is its own group;
        for "entire" all layers form one group.
        """
        if self.granularity == "entire":
            return [[name for group in groups for name in group]]
        if self.granularity == "layer":
            flat = [[name] for group in groups for name in group]
        else:
            flat = [list(group) for group in groups]
        if self.backward_order:
            flat = list(reversed(flat))
        return flat

    def group_for_pruning_round(
        self, pruning_round_counter: int, groups: list[list[str]]
    ) -> list[str]:
        """Layer names adjusted at the given pruning occasion (cyclic)."""
        ordered = self.groups_for(groups)
        return ordered[pruning_round_counter % len(ordered)]

    def adjustment_count(
        self, round_index: int, local_iterations: int, active_count: int
    ) -> int:
        """a_t^l for a layer with ``active_count`` unpruned weights."""
        t = round_index * local_iterations
        stop_t = self.stop_round * local_iterations
        return cosine_adjustment_count(
            t, stop_t, active_count, self.fraction
        )
