"""Erdős–Rényi-Kernel (ERK) layer-wise density allocation.

ERK is the sparsity distribution used by the original FedDST and RigL:
a layer's density is proportional to ``(fan_in + fan_out + kh + kw) /
(fan_in * fan_out * kh * kw)``, so small layers stay denser than large
ones. The paper's baselines use a uniform distribution; implementing
ERK lets the FedDST baseline run with its native allocation and gives
an ablation axis for candidate generation.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..sparse.mask import MaskSet, prunable_parameters
from .magnitude import weight_magnitude_scores
from .scores import layerwise_density_mask

__all__ = ["erk_densities", "erk_mask", "random_mask_erk"]


def _erk_score(shape: tuple[int, ...]) -> float:
    """Per-layer ERK raw score: sum(dims) / prod(dims)."""
    return float(sum(shape)) / float(np.prod(shape))


def erk_densities(
    model: Module, density: float, epsilon_tolerance: float = 1e-9
) -> dict[str, float]:
    """Layer densities from the ERK rule at an overall target density.

    Solves for the global scale so that the expected total active count
    matches ``density * total``, iteratively clamping any layer whose
    allocation exceeds 1 (dense) — the standard ERK construction.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    params = prunable_parameters(model)
    if not params:
        raise ValueError("model has no prunable parameters")
    sizes = {name: param.size for name, param in params}
    raw = {name: _erk_score(param.shape) for name, param in params}
    total = sum(sizes.values())
    budget = density * total

    dense_layers: set[str] = set()
    while True:
        dense_budget = sum(sizes[name] for name in dense_layers)
        free_names = [name for name in sizes if name not in dense_layers]
        if not free_names:
            break
        denom = sum(raw[name] * sizes[name] for name in free_names)
        if denom <= epsilon_tolerance:
            break
        scale = (budget - dense_budget) / denom
        overflow = [
            name for name in free_names if scale * raw[name] > 1.0
        ]
        if not overflow:
            break
        dense_layers.update(overflow)

    densities = {}
    for name in sizes:
        if name in dense_layers:
            densities[name] = 1.0
        else:
            densities[name] = float(
                np.clip(scale * raw[name], 0.0, 1.0)
            )
    return densities


def erk_mask(model: Module, density: float) -> MaskSet:
    """Magnitude mask with ERK layer-wise densities."""
    return layerwise_density_mask(
        model, weight_magnitude_scores(model), erk_densities(model, density)
    )


def random_mask_erk(
    model: Module, density: float, rng: np.random.Generator
) -> MaskSet:
    """Random mask with ERK layer-wise densities (FedDST/RigL init)."""
    from .magnitude import random_scores

    return layerwise_density_mask(
        model, random_scores(model, rng), erk_densities(model, density)
    )
