"""Model block partition for progressive pruning (paper Fig. 2).

FedTiny divides the model's prunable layers into five blocks and
adjusts one block per pruning round, iterating backward from the output
(Section IV-A2). ResNet-18 splits at its four stages (stem joins stage
1, the classifier joins stage 4's block); VGG-11 splits at its max-pool
boundaries. Any other architecture falls back to an even split.
"""

from __future__ import annotations

from ..nn.models.resnet import ResNet18
from ..nn.models.vgg import VGG11
from ..nn.module import Module
from ..sparse.mask import prunable_parameters

__all__ = ["model_blocks", "even_blocks"]

DEFAULT_NUM_BLOCKS = 5


def even_blocks(model: Module, num_blocks: int = DEFAULT_NUM_BLOCKS):
    """Evenly split the ordered prunable layers into contiguous blocks."""
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    names = [name for name, _ in prunable_parameters(model)]
    if not names:
        raise ValueError("model has no prunable parameters")
    num_blocks = min(num_blocks, len(names))
    blocks: list[list[str]] = [[] for _ in range(num_blocks)]
    # Distribute as evenly as possible, earlier blocks taking the
    # remainder (matches numpy.array_split).
    base, remainder = divmod(len(names), num_blocks)
    start = 0
    for index in range(num_blocks):
        size = base + (1 if index < remainder else 0)
        blocks[index] = names[start : start + size]
        start += size
    return blocks


def _resnet18_blocks(model: ResNet18) -> list[list[str]]:
    names = [name for name, _ in prunable_parameters(model)]
    stage_prefixes = ["stage1", "stage2", "stage3", "stage4"]
    blocks: list[list[str]] = [[] for _ in range(5)]
    for name in names:
        if name.startswith("stem"):
            blocks[0].append(name)
        elif name.startswith("fc"):
            blocks[4].append(name)
        else:
            for index, prefix in enumerate(stage_prefixes):
                if name.startswith(prefix):
                    # Stem rides with stage 1; fc shares block 5 with
                    # stage 4's tail handled below.
                    blocks[min(index, 4)].append(name)
                    break
            else:
                raise ValueError(f"unexpected ResNet-18 layer {name!r}")
    # Five blocks: [stem+stage1, stage2, stage3, stage4, fc]; merge the
    # classifier into the last block if it would otherwise be alone with
    # no convs (it is the output layer and typically protected).
    return [b for b in blocks if b]


def _vgg11_blocks(model: VGG11) -> list[list[str]]:
    """Split VGG-11 convs at pool boundaries: 64 | 128 | 256x2 | 512x2 |
    512x2 + classifier."""
    names = [name for name, _ in prunable_parameters(model)]
    conv_names = [n for n in names if n.startswith("features")]
    classifier_names = [n for n in names if n.startswith("classifier")]
    groups = [1, 1, 2, 2, 2]  # convs per stage in configuration A
    blocks: list[list[str]] = []
    cursor = 0
    for count in groups:
        blocks.append(conv_names[cursor : cursor + count])
        cursor += count
    if cursor != len(conv_names):  # width variants never change depth
        raise ValueError(
            f"expected {sum(groups)} VGG convs, found {len(conv_names)}"
        )
    blocks[-1].extend(classifier_names)
    return [b for b in blocks if b]


def model_blocks(
    model: Module, num_blocks: int = DEFAULT_NUM_BLOCKS
) -> list[list[str]]:
    """Block partition of ``model`` (paper Fig. 2 for the known models)."""
    if isinstance(model, ResNet18):
        return _resnet18_blocks(model)
    if isinstance(model, VGG11):
        return _vgg11_blocks(model)
    return even_blocks(model, num_blocks)
