"""Which layers are exempt from pruning.

The paper keeps the input layer and the output layer dense ("we do not
prune the batch normalization layer, bias, input layer, and output
layer because they affect model output directly"; BN and biases are
non-prunable parameters already). At full model scale those two layers
are a small fraction of the budget, but a width-reduced benchmark model
at an ultra-low density could not afford them — in that case protection
is dropped (deterministically) rather than blowing the budget.
"""

from __future__ import annotations

from ..nn.module import Module
from ..sparse.mask import prunable_parameters

__all__ = ["io_layer_names", "resolve_protected_layers"]

# Protected layers may consume at most this fraction of the keep budget.
_MAX_PROTECTED_BUDGET_FRACTION = 0.5


def io_layer_names(model: Module) -> tuple[str, str]:
    """Names of the first (input) and last (output) prunable parameters."""
    params = prunable_parameters(model)
    if not params:
        raise ValueError("model has no prunable parameters")
    return params[0][0], params[-1][0]


def resolve_protected_layers(
    model: Module, density: float, protect_io: bool = True
) -> frozenset[str]:
    """Protected-layer set that actually fits the density budget.

    Returns the input/output layer names when their combined dense size
    is at most half the keep budget at ``density``; otherwise returns an
    empty set (protection silently dropped, as a tiny bench-scale model
    cannot afford dense IO layers at paper densities).
    """
    if not protect_io:
        return frozenset()
    params = prunable_parameters(model)
    total = sum(p.size for _, p in params)
    budget = density * total
    first, last = io_layer_names(model)
    sizes = {name: param.size for name, param in params}
    protected_size = sizes[first] + (sizes[last] if last != first else 0)
    if protected_size <= _MAX_PROTECTED_BUDGET_FRACTION * budget:
        return frozenset({first, last})
    return frozenset()
