"""Coarse-pruned candidate generation (paper Section IV-A2).

The server builds a pool of C candidate structures by magnitude pruning
with *noisy layer-wise densities*: each free layer's density is the
shared base density perturbed by uniform noise, and a candidate is
accepted only if its overall density stays within the target
(rejection sampling, per the paper: "a candidate can be added to the
candidate pool only if its total density d satisfies d <= d_target").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.module import Module
from ..sparse.mask import MaskSet, prunable_parameters
from .magnitude import magnitude_mask_layerwise

__all__ = ["Candidate", "generate_candidate_pool"]

_MAX_REJECTION_ATTEMPTS = 200


@dataclass
class Candidate:
    """One coarse-pruned structure: mask plus its layer densities."""

    index: int
    masks: MaskSet
    layer_densities: dict[str, float]

    @property
    def density(self) -> float:
        return self.masks.density


def _noisy_densities(
    free_names: list[str],
    sizes: dict[str, int],
    protected: frozenset[str],
    base_density: float,
    budget: int,
    noise: float,
    rng: np.random.Generator,
) -> dict[str, float] | None:
    """One noisy layer-wise density draw, or None if it busts the budget."""
    densities: dict[str, float] = {name: 1.0 for name in protected}
    keep_total = sum(sizes[name] for name in protected)
    for name in free_names:
        perturbed = base_density * (1.0 + rng.uniform(-noise, noise))
        perturbed = float(np.clip(perturbed, 0.0, 1.0))
        densities[name] = perturbed
        keep_total += int(round(perturbed * sizes[name]))
    if keep_total > budget:
        return None
    return densities


def generate_candidate_pool(
    model: Module,
    target_density: float,
    pool_size: int,
    rng: np.random.Generator,
    noise: float = 0.9,
    protected: frozenset[str] = frozenset(),
) -> list[Candidate]:
    """Magnitude-pruned candidates with uniform-noise layer densities.

    The first candidate is always the noise-free uniform allocation so
    the pool contains the vanilla baseline structure; the rest are
    rejection-sampled noisy draws. If a draw keeps getting rejected the
    noise is recentered slightly below the base density so sampling
    terminates.
    """
    if pool_size < 1:
        raise ValueError(f"pool_size must be >= 1, got {pool_size}")
    if not 0.0 < target_density <= 1.0:
        raise ValueError(
            f"target_density must be in (0, 1], got {target_density}"
        )
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1], got {noise}")

    params = prunable_parameters(model)
    sizes = {name: param.size for name, param in params}
    total = sum(sizes.values())
    budget = int(round(target_density * total))
    free_names = [name for name, _ in params if name not in protected]
    protected_size = sum(sizes[name] for name in protected)
    free_size = max(1, total - protected_size)
    # Density the free layers share once protected layers take their cut.
    base_density = max(0.0, (budget - protected_size) / free_size)

    candidates: list[Candidate] = []
    uniform = {name: 1.0 for name in protected}
    uniform.update({name: base_density for name in free_names})
    candidates.append(
        Candidate(0, magnitude_mask_layerwise(model, uniform), uniform)
    )

    effective_base = base_density
    while len(candidates) < pool_size:
        densities = None
        for _ in range(_MAX_REJECTION_ATTEMPTS):
            densities = _noisy_densities(
                free_names, sizes, frozenset(protected), effective_base,
                budget, noise, rng,
            )
            if densities is not None:
                break
        if densities is None:
            # Recenter below the base so the budget check can pass.
            effective_base *= 0.95
            continue
        candidates.append(
            Candidate(
                len(candidates),
                magnitude_mask_layerwise(model, densities),
                densities,
            )
        )
    return candidates
