"""SynFlow: pruning by iteratively conserving synaptic flow.

Tanaka et al. (NeurIPS 2020). Data-free: all parameters are replaced by
their absolute values, batch normalization is neutralized, a ones input
is propagated, and the saliency of a weight is ``|dR/dw * w|`` for
``R = sum(output)``. Pruning is iterative with an exponential density
schedule, which is essential to avoid layer collapse.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import BatchNorm2d
from ..nn.module import Module
from ..sparse.mask import MaskSet, prunable_parameters
from .scores import global_score_mask

__all__ = ["synflow_scores", "synflow_mask"]


class _LinearizedModel:
    """Context manager: |params|, neutral BN, eval mode; restores on exit."""

    def __init__(self, model: Module) -> None:
        self.model = model
        self._saved_params: list[tuple] = []
        self._saved_bn: list[tuple] = []
        self._was_training = model.training

    def __enter__(self) -> Module:
        for _, param in self.model.named_parameters():
            self._saved_params.append((param, param.data.copy()))
            param.data = np.abs(param.data)
        for module in self.model.modules():
            if isinstance(module, BatchNorm2d):
                self._saved_bn.append(
                    (module, module.get_stats(), module.beta.data.copy())
                )
                module.set_stats(
                    np.zeros(module.num_features, dtype=np.float32),
                    np.ones(module.num_features, dtype=np.float32),
                )
                module.beta.data = np.abs(module.beta.data)
        self.model.eval()
        return self.model

    def __exit__(self, *exc) -> None:
        for param, data in self._saved_params:
            param.data = data
        for module, (mean, var), beta in self._saved_bn:
            module.set_stats(mean, var)
            module.beta.data = beta
        self.model.train(self._was_training)


def synflow_scores(
    model: Module, input_shape: tuple[int, ...]
) -> dict[str, np.ndarray]:
    """Synaptic-flow saliency ``|dR/dw * w|`` (data-free).

    ``input_shape`` excludes the batch dimension.
    """
    with _LinearizedModel(model) as linearized:
        linearized.zero_grad()
        ones = np.ones((1,) + tuple(input_shape), dtype=np.float32)
        out = linearized(ones)
        linearized.backward(np.ones_like(out))
        scores = {
            # Effective (masked) weights so pruned connections score 0
            # and stay pruned across iterations.
            name: np.abs(param.grad) * np.abs(param.effective)
            for name, param in prunable_parameters(linearized)
        }
    return scores


def synflow_mask(
    model: Module,
    input_shape: tuple[int, ...],
    density: float,
    iterations: int = 20,
    protected: set[str] | frozenset[str] = frozenset(),
) -> MaskSet:
    """Iterative SynFlow to the target density (exponential schedule)."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    params = prunable_parameters(model)
    saved_masks = [(p, None if p.mask is None else p.mask.copy())
                   for _, p in params]
    try:
        mask = MaskSet.dense(model)
        for step in range(1, iterations + 1):
            step_density = density ** (step / iterations)
            for name, param in params:
                param.set_mask(mask[name])
            scores = synflow_scores(model, input_shape)
            mask = global_score_mask(model, scores, step_density, protected)
        return mask
    finally:
        for param, saved in saved_masks:
            param.mask = saved
