"""Model zoo: the paper's evaluation architectures."""

from .registry import available_models, build_model, register_model
from .resnet import BasicBlock, ResNet18, resnet18
from .small_cnn import SmallCNN, small_cnn, small_cnn_matching_params
from .vgg import VGG11, VGG11_CONFIG, vgg11

__all__ = [
    "BasicBlock",
    "ResNet18",
    "SmallCNN",
    "VGG11",
    "VGG11_CONFIG",
    "available_models",
    "build_model",
    "register_model",
    "resnet18",
    "small_cnn",
    "small_cnn_matching_params",
    "vgg11",
]
