"""VGG-11 with batch normalization (the paper's second model).

The feature extractor follows the classic "A" configuration
``64 M 128 M 256 256 M 512 512 M 512 512 M``. Max-pool stages are
skipped once the spatial size would drop below 1 so the same topology
runs on reduced image sizes in tests/benchmarks. The classifier keeps
the two wide hidden layers of the original VGG (making VGG-11 much
larger than ResNet-18, as in the paper's memory-footprint column);
``classifier_hidden=()`` gives the compact CIFAR variant.
"""

from __future__ import annotations

import numpy as np

from ..layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from ..module import Module

__all__ = ["VGG11", "vgg11", "VGG11_CONFIG"]

VGG11_CONFIG: tuple = (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512,
                       512, "M")


def _scaled(channels: int, multiplier: float) -> int:
    return max(1, int(round(channels * multiplier)))


class VGG11(Module):
    """VGG-11 (configuration A) with batch normalization."""

    def __init__(
        self,
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        in_channels: int = 3,
        image_size: int = 32,
        classifier_hidden: tuple[int, ...] = (4096, 4096),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.num_classes = num_classes
        self.width_multiplier = width_multiplier

        layers: list[Module] = []
        channels = in_channels
        spatial = image_size
        for item in VGG11_CONFIG:
            if item == "M":
                if spatial >= 2:
                    layers.append(MaxPool2d(2, 2))
                    spatial //= 2
                continue
            out_ch = _scaled(int(item), width_multiplier)
            layers.append(
                Conv2d(channels, out_ch, 3, padding=1, bias=False, rng=rng)
            )
            layers.append(BatchNorm2d(out_ch))
            layers.append(ReLU())
            channels = out_ch
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d() if spatial > 1 else Flatten()
        self._final_spatial = spatial

        classifier_layers: list[Module] = []
        in_dim = channels
        for hidden in classifier_hidden:
            hidden_dim = _scaled(hidden, width_multiplier)
            classifier_layers.append(Linear(in_dim, hidden_dim, rng=rng))
            classifier_layers.append(ReLU())
            in_dim = hidden_dim
        classifier_layers.append(Linear(in_dim, num_classes, rng=rng))
        self.classifier = Sequential(*classifier_layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.features(x)
        x = self.pool(x)
        return self.classifier(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_out)
        grad = self.pool.backward(grad)
        return self.features.backward(grad)


def vgg11(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    in_channels: int = 3,
    image_size: int = 32,
    classifier_hidden: tuple[int, ...] = (4096, 4096),
    rng: np.random.Generator | None = None,
) -> VGG11:
    """Build a VGG-11 with batch normalization."""
    return VGG11(
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        in_channels=in_channels,
        image_size=image_size,
        classifier_hidden=classifier_hidden,
        rng=rng,
    )
