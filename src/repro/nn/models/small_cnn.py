"""The dense small model of paper Section IV-G.

A three-convolution CNN whose width is chosen so its parameter count
matches a pruned ResNet-18 at a given density — the "just train a small
dense model instead" baseline of Tables IV and V.
"""

from __future__ import annotations

import numpy as np

from ..layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from ..module import Module

__all__ = ["SmallCNN", "small_cnn", "small_cnn_matching_params"]


class SmallCNN(Module):
    """Three conv blocks (conv-BN-ReLU-pool) plus a linear classifier."""

    def __init__(
        self,
        num_classes: int = 10,
        base_width: int = 16,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        if base_width < 1:
            raise ValueError(f"base_width must be >= 1, got {base_width}")
        self.num_classes = num_classes
        self.base_width = base_width
        widths = [base_width, 2 * base_width, 4 * base_width]
        self.body = Sequential(
            Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(widths[0]),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(widths[0], widths[1], 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(widths[1]),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(widths[1], widths[2], 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(widths[2]),
            ReLU(),
            GlobalAvgPool2d(),
        )
        self.fc = Linear(widths[2], num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc(self.body(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.body.backward(self.fc.backward(grad_out))


def small_cnn(
    num_classes: int = 10,
    base_width: int = 16,
    in_channels: int = 3,
    rng: np.random.Generator | None = None,
) -> SmallCNN:
    """Build the three-convolution small model."""
    return SmallCNN(
        num_classes=num_classes,
        base_width=base_width,
        in_channels=in_channels,
        rng=rng,
    )


def small_cnn_matching_params(
    target_params: int,
    num_classes: int = 10,
    in_channels: int = 3,
    rng: np.random.Generator | None = None,
) -> SmallCNN:
    """Largest :class:`SmallCNN` with at most ``target_params`` parameters.

    This sizes the Section IV-G baseline to "a similar number of
    parameters to ResNet-18 at density d".
    """
    if target_params < 1:
        raise ValueError(f"target_params must be positive, got {target_params}")
    best: SmallCNN | None = None
    width = 1
    while True:
        candidate = SmallCNN(
            num_classes=num_classes,
            base_width=width,
            in_channels=in_channels,
            rng=np.random.default_rng(0),
        )
        if candidate.num_parameters() > target_params and best is not None:
            break
        if candidate.num_parameters() <= target_params:
            best = candidate
        else:
            # Even width 1 exceeds the budget; use it anyway as the
            # smallest expressible model.
            best = candidate
            break
        width += 1
        if width > 512:
            break
    assert best is not None
    return small_cnn(
        num_classes=num_classes,
        base_width=best.base_width,
        in_channels=in_channels,
        rng=rng,
    )
