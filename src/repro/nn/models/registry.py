"""Model registry: build models by name from experiment configs."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..module import Module
from .resnet import resnet18
from .small_cnn import small_cnn
from .vgg import vgg11

__all__ = ["build_model", "available_models", "register_model"]

_BUILDERS: dict[str, Callable[..., Module]] = {}


def register_model(name: str, builder: Callable[..., Module]) -> None:
    """Register a model builder under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _BUILDERS:
        raise ValueError(f"model {name!r} already registered")
    _BUILDERS[key] = builder


def available_models() -> list[str]:
    """Sorted names of registered models."""
    return sorted(_BUILDERS)


def build_model(
    name: str,
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    image_size: int = 32,
    in_channels: int = 3,
    seed: int = 0,
    **kwargs,
) -> Module:
    """Build a registered model.

    ``seed`` controls weight initialization so that repeated builds are
    bit-identical (required for LotteryFL's rewind-to-init step).
    """
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}"
        )
    rng = np.random.default_rng(seed)
    return _BUILDERS[key](
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        image_size=image_size,
        in_channels=in_channels,
        rng=rng,
        **kwargs,
    )


def _build_resnet18(num_classes, width_multiplier, image_size, in_channels,
                    rng, **kwargs):
    del image_size  # ResNet is size-agnostic thanks to global pooling.
    return resnet18(
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        in_channels=in_channels,
        rng=rng,
        **kwargs,
    )


def _build_vgg11(num_classes, width_multiplier, image_size, in_channels, rng,
                 **kwargs):
    return vgg11(
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        image_size=image_size,
        in_channels=in_channels,
        rng=rng,
        **kwargs,
    )


def _build_small_cnn(num_classes, width_multiplier, image_size, in_channels,
                     rng, **kwargs):
    del image_size
    base_width = max(1, int(round(16 * width_multiplier)))
    return small_cnn(
        num_classes=num_classes,
        base_width=kwargs.pop("base_width", base_width),
        in_channels=in_channels,
        rng=rng,
        **kwargs,
    )


register_model("resnet18", _build_resnet18)
register_model("vgg11", _build_vgg11)
register_model("small_cnn", _build_small_cnn)
