"""CIFAR-style ResNet-18 (paper's primary evaluation model).

The architecture follows He et al. adapted for 32x32 inputs: a 3x3 stem
(no initial max-pool), four stages of two BasicBlocks each with channel
widths ``[64, 128, 256, 512] * width_multiplier``, global average
pooling, and a linear classifier. ``width_multiplier`` lets tests and
benchmarks run the same topology at reduced cost.
"""

from __future__ import annotations

import numpy as np

from ..layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU,
    Sequential,
)
from ..module import Module

__all__ = ["BasicBlock", "ResNet18", "resnet18"]


def _scaled(channels: int, multiplier: float) -> int:
    return max(1, int(round(channels * multiplier)))


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(
            in_channels,
            out_channels,
            3,
            stride=stride,
            padding=1,
            bias=False,
            rng=rng,
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1, bias=False,
            rng=rng,
        )
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Sequential(
                Conv2d(
                    in_channels,
                    out_channels,
                    1,
                    stride=stride,
                    bias=False,
                    rng=rng,
                ),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.relu1(self.bn1(self.conv1(x)))
        main = self.bn2(self.conv2(main))
        return self.relu2(main + self.shortcut(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_out)
        grad_main = self.conv1.backward(
            self.bn1.backward(
                self.relu1.backward(
                    self.conv2.backward(self.bn2.backward(grad_sum))
                )
            )
        )
        grad_short = self.shortcut.backward(grad_sum)
        return grad_main + grad_short


class ResNet18(Module):
    """ResNet-18 for small images."""

    STAGE_CHANNELS = (64, 128, 256, 512)
    BLOCKS_PER_STAGE = 2

    def __init__(
        self,
        num_classes: int = 10,
        width_multiplier: float = 1.0,
        in_channels: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        widths = [_scaled(c, width_multiplier) for c in self.STAGE_CHANNELS]
        self.num_classes = num_classes
        self.width_multiplier = width_multiplier

        self.stem_conv = Conv2d(
            in_channels, widths[0], 3, stride=1, padding=1, bias=False,
            rng=rng,
        )
        self.stem_bn = BatchNorm2d(widths[0])
        self.stem_relu = ReLU()

        stages = []
        in_ch = widths[0]
        for stage_index, out_ch in enumerate(widths):
            blocks = []
            for block_index in range(self.BLOCKS_PER_STAGE):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                blocks.append(BasicBlock(in_ch, out_ch, stride, rng))
                in_ch = out_ch
            stages.append(Sequential(*blocks))
        self.stage1, self.stage2, self.stage3, self.stage4 = stages

        self.pool = GlobalAvgPool2d()
        self.fc = Linear(widths[3], num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem_relu(self.stem_bn(self.stem_conv(x)))
        x = self.stage1(x)
        x = self.stage2(x)
        x = self.stage3(x)
        x = self.stage4(x)
        x = self.pool(x)
        return self.fc(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.fc.backward(grad_out)
        grad = self.pool.backward(grad)
        grad = self.stage4.backward(grad)
        grad = self.stage3.backward(grad)
        grad = self.stage2.backward(grad)
        grad = self.stage1.backward(grad)
        grad = self.stem_conv.backward(
            self.stem_bn.backward(self.stem_relu.backward(grad))
        )
        return grad


def resnet18(
    num_classes: int = 10,
    width_multiplier: float = 1.0,
    in_channels: int = 3,
    rng: np.random.Generator | None = None,
) -> ResNet18:
    """Build a CIFAR-style ResNet-18."""
    return ResNet18(
        num_classes=num_classes,
        width_multiplier=width_multiplier,
        in_channels=in_channels,
        rng=rng,
    )
