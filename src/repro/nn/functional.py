"""Stateless tensor operations used by the layer implementations.

The convolution primitives use the classic im2col/col2im lowering: a
convolution becomes a single large matrix multiplication, which is the
only way to get acceptable throughput out of NumPy. All functions work
on ``float32`` arrays in NCHW layout.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "softmax",
    "log_softmax",
    "one_hot",
]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} <= 0 "
            f"(input={size}, kernel={kernel}, stride={stride}, pad={pad})"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Unfold image patches into a matrix.

    Args:
        x: input of shape ``(N, C, H, W)``.

    Returns:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
        where each row is one receptive field.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    if pad > 0:
        img = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    else:
        img = x
    col = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            col[:, :, i, j, :, :] = img[:, :, i:i_max:stride, j:j_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )


def col2im(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold a patch matrix back into an image, accumulating overlaps.

    This is the adjoint of :func:`im2col` and therefore computes the
    gradient of a convolution with respect to its input.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    col = col.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    img = np.zeros(
        (n, c, h + 2 * pad + stride - 1, w + 2 * pad + stride - 1),
        dtype=col.dtype,
    )
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            img[:, :, i:i_max:stride, j:j_max:stride] += col[:, :, i, j, :, :]
    return img[:, :, pad : pad + h, pad : pad + w]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot ``float32`` matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
