"""Stateless tensor operations used by the layer implementations.

The convolution primitives use the classic im2col/col2im lowering: a
convolution becomes a single large matrix multiplication, which is the
only way to get acceptable throughput out of NumPy. All functions work
on ``float32`` arrays in NCHW layout.

``im2col`` gathers patches through a zero-copy
``np.lib.stride_tricks.sliding_window_view`` and materializes the patch
matrix with a single fused transpose/reshape copy; ``col2im`` first
restores the kernel-major layout with one contiguous copy so its
accumulation passes stream over contiguous memory. Both are bit-identical
to the reference double-loop implementations (kept below as
``im2col_reference``/``col2im_reference`` for regression tests and
benchmark baselines): they move exactly the same values, and ``col2im``
preserves the reference's per-pixel accumulation order. Because every
construction is pure data movement, each function picks the fastest
route per problem size: 1x1 kernels collapse to plain relayouts, wide
patch rows take the vectorized route, and narrow ones keep the
reference construction, which benches faster there.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "im2col_kernel_major",
    "col2im_kernel_major",
    "im2col_reference",
    "col2im_reference",
    "softmax",
    "log_softmax",
    "one_hot",
]


#: Patch-row widths (C * kh * kw) above which the vectorized im2col /
#: col2im constructions beat the reference double loop. Below them the
#: strided-view machinery costs more than it saves; both routes move
#: exactly the same values, so the dispatch is invisible to callers.
#: col2im crosses over earlier because its reference implementation
#: re-gathers the whole column matrix once per kernel offset.
_VECTORIZED_MIN_K_IM2COL = 512
_VECTORIZED_MIN_K_COL2IM = 256


def _pad_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial axes (np.pad minus its Python overhead)."""
    if pad == 0:
        return x
    n, c, h, w = x.shape
    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=x.dtype)
    img[:, :, pad : pad + h, pad : pad + w] = x
    return img


def _im2col_loop(
    img: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Kernel-offset loop construction of ``(N, C, kh, kw, oh, ow)``."""
    n, c = img.shape[:2]
    col = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=img.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            col[:, :, i, j] = img[:, :, i:i_max:stride, j:j_max:stride]
    return col


def _col2im_loop(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Kernel-offset scatter-add of a ``(N, C, kh, kw, oh, ow)`` array.

    Accumulates in (i, j) order, matching :func:`col2im_reference`
    per-pixel, and crops the padded margin.
    """
    n, c, h, w = input_shape
    out_h = col.shape[4]
    out_w = col.shape[5]
    img = np.zeros(
        (n, c, h + 2 * pad + stride - 1, w + 2 * pad + stride - 1),
        dtype=col.dtype,
    )
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            img[:, :, i:i_max:stride, j:j_max:stride] += col[:, :, i, j]
    return img[:, :, pad : pad + h, pad : pad + w]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} <= 0 "
            f"(input={size}, kernel={kernel}, stride={stride}, pad={pad})"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Unfold image patches into a matrix.

    Args:
        x: input of shape ``(N, C, H, W)``.

    Returns:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
        where each row is one receptive field.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    if kernel_h == 1 and kernel_w == 1 and pad == 0:
        # Pointwise convolution: patch extraction is a pure relayout.
        return np.ascontiguousarray(
            x[:, :, ::stride, ::stride].transpose(0, 2, 3, 1)
        ).reshape(n * out_h * out_w, c)

    if c * kernel_h * kernel_w < _VECTORIZED_MIN_K_IM2COL:
        col = _im2col_loop(
            _pad_input(x, pad), kernel_h, kernel_w, stride, out_h, out_w
        )
        return col.transpose(0, 4, 5, 1, 2, 3).reshape(
            n * out_h * out_w, c * kernel_h * kernel_w
        )

    img = _pad_input(x, pad)
    windows = np.lib.stride_tricks.sliding_window_view(
        img, (kernel_h, kernel_w), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    # (N, C, out_h, out_w, kh, kw) view -> one gather copy into the
    # (N*out_h*out_w, C*kh*kw) patch matrix.
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )


def col2im(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold a patch matrix back into an image, accumulating overlaps.

    This is the adjoint of :func:`im2col` and therefore computes the
    gradient of a convolution with respect to its input.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    if kernel_h == 1 and kernel_w == 1 and pad == 0:
        folded = np.ascontiguousarray(
            col.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        )
        if stride == 1:
            return folded
        img = np.zeros((n, c, h, w), dtype=col.dtype)
        img[:, :, ::stride, ::stride] = folded
        return img
    if c * kernel_h * kernel_w < _VECTORIZED_MIN_K_COL2IM:
        return col2im_reference(
            col, input_shape, kernel_h, kernel_w, stride, pad
        )
    # One contiguous copy into kernel-major layout so every accumulation
    # slice reads a contiguous (N, C, out_h, out_w) block instead of a
    # doubly-strided gather.
    col = np.ascontiguousarray(
        col.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
            0, 3, 4, 5, 1, 2
        )
    )
    return _col2im_loop(col, input_shape, kernel_h, kernel_w, stride, pad)


def im2col_kernel_major(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Unfold patches into kernel-major layout ``(N, C*kh*kw, L)``.

    ``L = out_h * out_w``. Row ``(c, i, j)`` of sample ``n`` holds the
    input plane ``c`` shifted by the kernel offset ``(i, j)`` — the
    layout the engine's sparse conv path consumes with batched matmuls,
    built from large spatially-contiguous copies instead of the
    patch-major gather of :func:`im2col`.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    if kernel_h == 1 and kernel_w == 1 and pad == 0:
        if stride == 1:
            # Pointwise, unit stride: the input already is the column
            # matrix — zero-copy view.
            return x.reshape(n, c, h * w)
        return np.ascontiguousarray(x[:, :, ::stride, ::stride]).reshape(
            n, c, out_h * out_w
        )
    col = _im2col_loop(
        _pad_input(x, pad), kernel_h, kernel_w, stride, out_h, out_w
    )
    return col.reshape(n, c * kernel_h * kernel_w, out_h * out_w)


def col2im_kernel_major(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col_kernel_major` (no relayout needed)."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    if kernel_h == 1 and kernel_w == 1 and pad == 0:
        if stride == 1:
            return col.reshape(n, c, h, w)
        img = np.zeros((n, c, h, w), dtype=col.dtype)
        img[:, :, ::stride, ::stride] = col.reshape(n, c, out_h, out_w)
        return img
    col = col.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
    return _col2im_loop(col, input_shape, kernel_h, kernel_w, stride, pad)


def im2col_reference(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> np.ndarray:
    """Pre-engine double-loop :func:`im2col` (bit-identity reference)."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    if pad > 0:
        img = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    else:
        img = x
    col = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            col[:, :, i, j, :, :] = img[:, :, i:i_max:stride, j:j_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )


def col2im_reference(
    col: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Pre-engine double-loop :func:`col2im` (bit-identity reference)."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    col = col.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    img = np.zeros(
        (n, c, h + 2 * pad + stride - 1, w + 2 * pad + stride - 1),
        dtype=col.dtype,
    )
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            img[:, :, i:i_max:stride, j:j_max:stride] += col[:, :, i, j, :, :]
    return img[:, :, pad : pad + h, pad : pad + w]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot ``float32`` matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
