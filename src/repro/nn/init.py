"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so every
model build is reproducible from a single seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in / fan-out of a linear (out, in) or conv (out, in, kh, kw) shape."""
    if len(shape) < 2:
        raise ValueError(f"need at least 2 dimensions, got shape {shape}")
    receptive = 1
    for dim in shape[2:]:
        receptive *= dim
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """He-normal initialization for ReLU networks."""
    fan_in, _ = fan_in_and_fan_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """He-uniform initialization for ReLU networks."""
    fan_in, _ = fan_in_and_fan_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot-uniform initialization for linear output layers."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
