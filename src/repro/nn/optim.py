"""Optimizers and learning-rate schedules.

The :class:`SGD` optimizer implements the sparse update of the paper's
Eq. 5: ``theta <- theta - lr * (grad(L) * mask)``. Gradients are always
computed with respect to the effective weight, so masking happens here,
at update time, and the raw gradient at pruned positions survives as the
growth signal for progressive pruning.
"""

from __future__ import annotations

import math

from .module import Module
from .parameter import Parameter

__all__ = [
    "SGD",
    "LRSchedule",
    "ConstantLR",
    "CosineLR",
    "StepLR",
]


class LRSchedule:
    """Base class: maps a global step index to a learning rate."""

    def lr(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self._lr = lr

    def lr(self, step: int) -> float:
        return self._lr


class CosineLR(LRSchedule):
    """Cosine annealing from ``lr_max`` to ``lr_min`` over ``total_steps``."""

    def __init__(
        self, lr_max: float, total_steps: int, lr_min: float = 0.0
    ) -> None:
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        if lr_max <= lr_min:
            raise ValueError("lr_max must exceed lr_min")
        self.lr_max = lr_max
        self.lr_min = lr_min
        self.total_steps = total_steps

    def lr(self, step: int) -> float:
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        return self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (
            1.0 + math.cos(math.pi * progress)
        )


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.base_lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Updates are masked for sparse parameters, and momentum buffers are
    zeroed at pruned positions so that a weight regrown later starts
    with no stale velocity.
    """

    def __init__(
        self,
        module: Module,
        lr: float | LRSchedule = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if isinstance(lr, LRSchedule):
            self.schedule = lr
        else:
            self.schedule = ConstantLR(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(
                f"weight_decay must be non-negative, got {weight_decay}"
            )
        self.module = module
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.step_count = 0
        self._velocity: dict[int, object] = {}

    @property
    def current_lr(self) -> float:
        return self.schedule.lr(self.step_count)

    def zero_grad(self) -> None:
        self.module.zero_grad()

    def step(self) -> None:
        """Apply one masked SGD update to every parameter."""
        lr = self.current_lr
        for param in self.module.parameters():
            self._update_param(param, lr)
        self.step_count += 1

    def _update_param(self, param: Parameter, lr: float) -> None:
        grad = param.grad
        if self.weight_decay > 0.0:
            grad = grad + self.weight_decay * param.data
        if param.mask is not None:
            grad = grad * param.mask
        if self.momentum > 0.0:
            velocity = self._velocity.get(id(param))
            if velocity is None or velocity.shape != grad.shape:
                velocity = grad.copy()
            else:
                velocity = self.momentum * velocity + grad
            if param.mask is not None:
                velocity *= param.mask
            self._velocity[id(param)] = velocity
            update = velocity
        else:
            update = grad
        param.data -= lr * update
        if param.mask is not None:
            # Keep pruned positions exactly zero (weight decay and
            # floating-point drift would otherwise leak values back in).
            param.data *= param.mask

    def reset_velocity(self) -> None:
        """Drop all momentum state (used when masks change globally)."""
        self._velocity.clear()
