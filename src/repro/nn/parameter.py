"""Trainable parameters with optional sparsity masks.

A :class:`Parameter` owns three arrays:

``data``
    The dense value of the parameter.
``grad``
    The gradient with respect to the *effective* (masked) value. Layers
    always write gradients of the effective weight, so the gradient at a
    pruned position is exactly the growth signal RigL-style algorithms
    need (paper Eq. 6): "what would this connection receive if it were
    re-grown".
``mask``
    Optional binary array of the same shape. ``None`` means dense. The
    effective value used in the forward pass is ``data * mask``.

``data`` and ``mask`` are version-tagged properties: every assignment
(including augmented assignments such as ``param.data -= update``, which
route through the setter) bumps an internal version counter. The
``effective`` product and the row/density statistics are cached against
that counter, so they are computed once per mutation instead of once per
read. Code that mutates ``data`` in place *through a separate view*
(the only case the setters cannot see) must call :meth:`bump_version`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named, optionally masked, trainable array."""

    def __init__(self, data: np.ndarray, prunable: bool = False) -> None:
        self._data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self._data)
        self._mask: np.ndarray | None = None
        self.prunable = bool(prunable)
        self._version = 0
        # Version-tagged caches (valid while their tag == self._version).
        self._effective_cache: np.ndarray | None = None
        self._effective_tag = -1
        self._num_active_cache = 0
        self._num_active_tag = -1
        self._active_rows_cache: np.ndarray | None = None
        self._active_rows_tag = -1

    # ------------------------------------------------------------------
    # Versioned storage
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = np.asarray(value, dtype=np.float32)
        self._version += 1

    @property
    def mask(self) -> np.ndarray | None:
        return self._mask

    @mask.setter
    def mask(self, value: np.ndarray | None) -> None:
        self._mask = value
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every data/mask mutation."""
        return self._version

    def bump_version(self) -> None:
        """Invalidate caches after an in-place edit through a view."""
        self._version += 1

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def size(self) -> int:
        return int(self._data.size)

    # ------------------------------------------------------------------
    # Sparsity
    # ------------------------------------------------------------------
    @property
    def effective(self) -> np.ndarray:
        """Value used in the forward pass (``data * mask`` when masked).

        Masked parameters return a cached product that is recomputed only
        when the version changes; treat it as read-only.
        """
        if self._mask is None:
            return self._data
        if self._effective_tag != self._version:
            self._effective_cache = self._data * self._mask
            self._effective_tag = self._version
        return self._effective_cache

    def set_mask(self, mask: np.ndarray | None) -> None:
        """Install a binary mask (or remove it with ``None``)."""
        if mask is None:
            self.mask = None
            return
        mask = np.asarray(mask)
        if mask.shape != self._data.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match parameter shape "
                f"{self._data.shape}"
            )
        self.mask = (mask != 0).astype(np.float32)

    def apply_mask(self) -> None:
        """Zero the stored data at pruned positions (paper: theta = Theta * m)."""
        if self._mask is not None:
            self.data = self._data * self._mask

    @property
    def num_active(self) -> int:
        """Number of unpruned entries."""
        if self._mask is None:
            return self.size
        if self._num_active_tag != self._version:
            self._num_active_cache = int(np.count_nonzero(self._mask))
            self._num_active_tag = self._version
        return self._num_active_cache

    @property
    def density(self) -> float:
        """Fraction of unpruned entries in [0, 1]."""
        if self.size == 0:
            return 1.0
        return self.num_active / self.size

    def active_output_rows(self) -> np.ndarray | None:
        """Indices of axis-0 rows with at least one unpruned entry.

        ``None`` for dense parameters. For a conv/linear weight, axis 0
        is the output-channel/feature dimension, so a missing index is a
        fully-pruned output row the compute engine can skip.
        """
        if self._mask is None:
            return None
        if self._active_rows_tag != self._version:
            rows = np.asarray(self._mask).reshape(self.shape[0], -1)
            self._active_rows_cache = np.flatnonzero(rows.any(axis=1))
            self._active_rows_tag = self._version
        return self._active_rows_cache

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Parameter(shape={self.shape}, prunable={self.prunable}, "
            f"density={self.density:.4f})"
        )
