"""Trainable parameters with optional sparsity masks.

A :class:`Parameter` owns three arrays:

``data``
    The dense value of the parameter.
``grad``
    The gradient with respect to the *effective* (masked) value. Layers
    always write gradients of the effective weight, so the gradient at a
    pruned position is exactly the growth signal RigL-style algorithms
    need (paper Eq. 6): "what would this connection receive if it were
    re-grown".
``mask``
    Optional binary array of the same shape. ``None`` means dense. The
    effective value used in the forward pass is ``data * mask``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named, optionally masked, trainable array."""

    def __init__(self, data: np.ndarray, prunable: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.mask: np.ndarray | None = None
        self.prunable = bool(prunable)

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    # ------------------------------------------------------------------
    # Sparsity
    # ------------------------------------------------------------------
    @property
    def effective(self) -> np.ndarray:
        """Value used in the forward pass (``data * mask`` when masked)."""
        if self.mask is None:
            return self.data
        return self.data * self.mask

    def set_mask(self, mask: np.ndarray | None) -> None:
        """Install a binary mask (or remove it with ``None``)."""
        if mask is None:
            self.mask = None
            return
        mask = np.asarray(mask)
        if mask.shape != self.data.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match parameter shape "
                f"{self.data.shape}"
            )
        self.mask = (mask != 0).astype(np.float32)

    def apply_mask(self) -> None:
        """Zero the stored data at pruned positions (paper: theta = Theta * m)."""
        if self.mask is not None:
            self.data *= self.mask

    @property
    def num_active(self) -> int:
        """Number of unpruned entries."""
        if self.mask is None:
            return self.size
        return int(self.mask.sum())

    @property
    def density(self) -> float:
        """Fraction of unpruned entries in [0, 1]."""
        if self.size == 0:
            return 1.0
        return self.num_active / self.size

    # ------------------------------------------------------------------
    # Gradients
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Parameter(shape={self.shape}, prunable={self.prunable}, "
            f"density={self.density:.4f})"
        )
