"""Model and run checkpointing to ``.npz`` archives.

Saves parameters, masks and buffers so a pruned model (for example the
tiny specialized model FedTiny produces for deployment) can be stored,
shipped to a device, and reloaded without retraining.

The second half of the module is *run*-level: one archive per run
holding the server's global state, the mask structure, and a pickled
metadata blob (RNG stream positions, clocks, counters, recorded round
metrics) — everything a killed federated run needs to resume bit-for-
bit. The federated wiring lives in
:meth:`repro.fl.simulation.FederatedContext.save_checkpoint`; this
module only knows arrays and blobs.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "RunCheckpoint",
    "load_model",
    "load_run_checkpoint",
    "save_model",
    "save_run_checkpoint",
]

_MASK_SUFFIX = ".__mask__"
_BUFFER_PREFIX = "buffer::"


def save_model(model: Module, path: str | Path) -> None:
    """Write parameters, masks and buffers to a compressed ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        arrays[name] = param.data
        if param.mask is not None:
            arrays[name + _MASK_SUFFIX] = param.mask
    for name, buf in model.named_buffers():
        arrays[_BUFFER_PREFIX + name] = buf
    np.savez_compressed(path, **arrays)


def load_model(model: Module, path: str | Path) -> Module:
    """Load a checkpoint written by :func:`save_model` (strict).

    Masks present in the checkpoint are installed; parameters that were
    saved without a mask have any existing mask removed, so the loaded
    model reproduces the exact sparsity structure that was saved.
    """
    with np.load(Path(path)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    params = dict(model.named_parameters())
    buffers = {name for name, _ in model.named_buffers()}

    param_keys = {
        k for k in arrays
        if not k.startswith(_BUFFER_PREFIX) and not k.endswith(_MASK_SUFFIX)
    }
    unknown = param_keys - set(params)
    if unknown:
        raise KeyError(f"checkpoint has unknown parameters: {sorted(unknown)}")
    missing = set(params) - param_keys
    if missing:
        raise KeyError(f"checkpoint is missing parameters: {sorted(missing)}")

    for name in param_keys:
        value = arrays[name]
        if params[name].data.shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: "
                f"{params[name].data.shape} vs {value.shape}"
            )
        params[name].data = value.astype(np.float32).copy()
        mask_key = name + _MASK_SUFFIX
        if mask_key in arrays:
            params[name].set_mask(arrays[mask_key])
            params[name].apply_mask()
        else:
            params[name].set_mask(None)

    for key in arrays:
        if key.startswith(_BUFFER_PREFIX):
            name = key[len(_BUFFER_PREFIX):]
            if name not in buffers:
                raise KeyError(f"checkpoint has unknown buffer {name!r}")
            model._assign_buffer(name, arrays[key])
    return model


# ----------------------------------------------------------------------
# Run-level checkpoints (crash-resumable federated runs)
# ----------------------------------------------------------------------
_STATE_PREFIX = "state::"
_RUN_MASK_PREFIX = "mask::"
_META_KEY = "__run_meta__"


@dataclass
class RunCheckpoint:
    """One resumable snapshot of a federated run.

    ``state`` is the server's committed global state (parameters plus
    ``buffer::``-prefixed buffers), ``masks`` the boolean mask arrays
    by layer name, and ``meta`` the pickled everything-else: RNG stream
    positions, simulated clock, comm counters, recorded rounds, and the
    method's own cross-round state. The metadata blob is pickled —
    same-trust local files only, exactly like the payload codec's spec
    header.
    """

    round_index: int
    state: dict[str, np.ndarray]
    masks: dict[str, np.ndarray]
    meta: dict


def save_run_checkpoint(
    path: str | Path,
    state: dict[str, np.ndarray],
    masks: dict[str, np.ndarray],
    meta: dict,
) -> None:
    """Atomically write one run snapshot to a compressed ``.npz``.

    The archive is written to a sibling temp file and moved into place
    with :func:`os.replace`, so a run killed *during* checkpointing
    leaves the previous checkpoint intact instead of a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if "round_index" not in meta:
        raise ValueError("run-checkpoint meta needs a 'round_index'")
    arrays: dict[str, np.ndarray] = {
        _STATE_PREFIX + name: value for name, value in state.items()
    }
    for name, mask in masks.items():
        arrays[_RUN_MASK_PREFIX + name] = np.asarray(mask, dtype=bool)
    arrays[_META_KEY] = np.frombuffer(
        pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL),
        dtype=np.uint8,
    )
    # np.savez appends ".npz" unless the name already ends with it, so
    # the temp name keeps the suffix to stay predictable.
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez_compressed(tmp, **arrays)
    os.replace(tmp, path)


def load_run_checkpoint(path: str | Path) -> RunCheckpoint:
    """Load a snapshot written by :func:`save_run_checkpoint`."""
    with np.load(Path(path)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    if _META_KEY not in arrays:
        raise KeyError(f"{path} is not a run checkpoint (no metadata)")
    meta = pickle.loads(arrays.pop(_META_KEY).tobytes())
    state = {
        name[len(_STATE_PREFIX):]: value
        for name, value in arrays.items()
        if name.startswith(_STATE_PREFIX)
    }
    masks = {
        name[len(_RUN_MASK_PREFIX):]: value
        for name, value in arrays.items()
        if name.startswith(_RUN_MASK_PREFIX)
    }
    return RunCheckpoint(
        round_index=int(meta["round_index"]),
        state=state,
        masks=masks,
        meta=meta,
    )
