"""Model checkpointing to ``.npz`` archives.

Saves parameters, masks and buffers so a pruned model (for example the
tiny specialized model FedTiny produces for deployment) can be stored,
shipped to a device, and reloaded without retraining.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model"]

_MASK_SUFFIX = ".__mask__"
_BUFFER_PREFIX = "buffer::"


def save_model(model: Module, path: str | Path) -> None:
    """Write parameters, masks and buffers to a compressed ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        arrays[name] = param.data
        if param.mask is not None:
            arrays[name + _MASK_SUFFIX] = param.mask
    for name, buf in model.named_buffers():
        arrays[_BUFFER_PREFIX + name] = buf
    np.savez_compressed(path, **arrays)


def load_model(model: Module, path: str | Path) -> Module:
    """Load a checkpoint written by :func:`save_model` (strict).

    Masks present in the checkpoint are installed; parameters that were
    saved without a mask have any existing mask removed, so the loaded
    model reproduces the exact sparsity structure that was saved.
    """
    with np.load(Path(path)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    params = dict(model.named_parameters())
    buffers = {name for name, _ in model.named_buffers()}

    param_keys = {
        k for k in arrays
        if not k.startswith(_BUFFER_PREFIX) and not k.endswith(_MASK_SUFFIX)
    }
    unknown = param_keys - set(params)
    if unknown:
        raise KeyError(f"checkpoint has unknown parameters: {sorted(unknown)}")
    missing = set(params) - param_keys
    if missing:
        raise KeyError(f"checkpoint is missing parameters: {sorted(missing)}")

    for name in param_keys:
        value = arrays[name]
        if params[name].data.shape != value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: "
                f"{params[name].data.shape} vs {value.shape}"
            )
        params[name].data = value.astype(np.float32).copy()
        mask_key = name + _MASK_SUFFIX
        if mask_key in arrays:
            params[name].set_mask(arrays[mask_key])
            params[name].apply_mask()
        else:
            params[name].set_mask(None)

    for key in arrays:
        if key.startswith(_BUFFER_PREFIX):
            name = key[len(_BUFFER_PREFIX):]
            if name not in buffers:
                raise KeyError(f"checkpoint has unknown buffer {name!r}")
            model._assign_buffer(name, arrays[key])
    return model
