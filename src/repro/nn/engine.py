"""Sparsity-aware execution-engine configuration.

The compute layers (:class:`~repro.nn.layers.Conv2d`,
:class:`~repro.nn.layers.Linear`) consult this module to decide *how* to
run, independently of *what* they compute:

``density_threshold``
    Below this parameter density a layer drops the all-zero output rows
    of its reshaped effective weight from every matrix multiplication, so
    fully-pruned output channels cost nothing. Above it the layer runs
    the plain dense kernels. Dropping exactly-zero rows never changes the
    mathematical result, but BLAS may associate the surviving partial
    sums differently for the smaller matmul shapes, so results can drift
    by a few ULPs versus the dense kernels. The threshold therefore
    defaults to ``0.0`` (dispatch off): runs stay byte-identical to the
    pre-engine substrate unless the caller opts in (``repro run
    --density-threshold``, :func:`configure`, or the environment
    variable below).

:func:`inference_mode`
    Layers skip all backward-pass bookkeeping (``_cache`` activations,
    max-pool argmax indices, BN ``x_hat`` tensors) inside this context.
    Evaluation and BN recalibration run forward-only, so the caches are
    pure memory and time overhead there.

:func:`masked_weight_grads`
    Inside this context, layers skip the weight-gradient computation for
    fully-pruned output rows. The masked SGD update (paper Eq. 5)
    multiplies gradients by the mask before applying them, so local
    training loops can enable this without changing a single update;
    growth-signal collection (paper Eq. 6) must run *outside* it so
    pruned positions keep their dense gradients.

The threshold can be pre-set for a whole process tree with the
``REPRO_DENSITY_THRESHOLD`` environment variable (read at import, so it
propagates to spawned executor workers).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "EngineConfig",
    "get_config",
    "configure",
    "dispatch_rows",
    "inference_mode",
    "caching_enabled",
    "masked_weight_grads",
    "weight_grads_masked",
    "LoweringCache",
    "lowering_cache",
    "active_lowering_cache",
]

_DEFAULT_DENSITY_THRESHOLD = 0.0


@dataclass
class EngineConfig:
    """Tunable knobs of the sparsity-aware compute engine."""

    #: Sparse row dispatch activates when a prunable parameter's density
    #: is strictly below this value (0.0, the default, disables it
    #: entirely; 1.0 means always try to drop rows).
    density_threshold: float = _DEFAULT_DENSITY_THRESHOLD


def _validated_threshold(
    value: float, source: str = "density_threshold"
) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(
            f"{source} must be in [0, 1], got {value}"
        )
    return float(value)


def _initial_config() -> EngineConfig:
    raw = os.environ.get("REPRO_DENSITY_THRESHOLD")
    if raw is None:
        return EngineConfig()
    try:
        threshold = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"environment variable REPRO_DENSITY_THRESHOLD must be a "
            f"float in [0, 1], got {raw!r}"
        ) from exc
    return EngineConfig(
        density_threshold=_validated_threshold(
            threshold,
            source="environment variable REPRO_DENSITY_THRESHOLD",
        )
    )


_config = _initial_config()


def get_config() -> EngineConfig:
    """The live engine configuration (mutate via :func:`configure`)."""
    return _config


def configure(*, density_threshold: float | None = None) -> EngineConfig:
    """Update engine knobs; returns the updated config."""
    if density_threshold is not None:
        _config.density_threshold = _validated_threshold(density_threshold)
    return _config


def dispatch_rows(param, num_rows: int):
    """Active output-row indices for sparse dispatch, or ``None``.

    ``None`` means run the dense kernels: the parameter is unmasked, its
    density is at or above the threshold, or no output row is fully
    pruned (so there is nothing to drop).
    """
    if param.mask is None:
        return None
    if param.density >= _config.density_threshold:
        return None
    rows = param.active_output_rows()
    if rows.size == num_rows:
        return None
    return rows


# ----------------------------------------------------------------------
# Inference fast path (no backward bookkeeping)
# ----------------------------------------------------------------------
_inference_depth = 0


@contextmanager
def inference_mode():
    """Forward-only context: layers keep no state for ``backward``.

    A ``backward`` call after a forward pass taken inside this context
    raises ``RuntimeError("backward called before forward")``, exactly as
    if no forward had run.
    """
    global _inference_depth
    _inference_depth += 1
    try:
        yield
    finally:
        _inference_depth -= 1


def caching_enabled() -> bool:
    """Whether layers should record backward-pass caches."""
    return _inference_depth == 0


# ----------------------------------------------------------------------
# Masked weight gradients (training fast path)
# ----------------------------------------------------------------------
_masked_grad_depth = 0


@contextmanager
def masked_weight_grads():
    """Skip weight gradients of fully-pruned output rows.

    Only safe where gradients feed a *masked* update (local SGD); never
    wrap growth-signal collection in this.
    """
    global _masked_grad_depth
    _masked_grad_depth += 1
    try:
        yield
    finally:
        _masked_grad_depth -= 1


def weight_grads_masked() -> bool:
    """Whether fully-pruned-row weight gradients may be skipped."""
    return _masked_grad_depth > 0


# ----------------------------------------------------------------------
# Lowering cache (candidate-selection fast path)
# ----------------------------------------------------------------------
class LoweringCache:
    """Memoized ``im2col`` lowerings of registered, immutable inputs.

    The im2col lowering is a pure relayout of its input: it depends on
    the input values and the layer geometry, never on parameter values
    or masks. During candidate selection the same dev batches are pushed
    through ``C`` candidate structures, so the lowering of every layer
    whose input *is* a dev batch (the stem convolution) is recomputed
    ``C`` times for bytes that cannot change.

    The cache is keyed by strict object identity: a caller registers the
    batch arrays it promises not to mutate (:meth:`register_source`),
    and :meth:`lowering` serves a memoized column matrix only when the
    layer's input **is** one of those arrays. Any other input — every
    deeper layer, whose activations do depend on the candidate masks —
    falls through to a fresh computation and is never cached, so a hit
    is bit-identical to recomputation by construction. Layers consult
    the cache only in inference mode (no backward bookkeeping), keeping
    every training path untouched; the dispatch decision itself still
    runs through the version-tagged ``Parameter`` caches.

    Cached column matrices must be treated as read-only by consumers
    (the conv forward only ever multiplies them).
    """

    def __init__(self) -> None:
        # id(array) -> (array, source_key); the stored reference keeps
        # the array alive, so a registered id can never be recycled.
        self._sources: dict[int, tuple] = {}
        self._entries: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def register_source(self, array, key) -> None:
        """Promise that ``array`` is immutable and identified by ``key``."""
        self._sources[id(array)] = (array, key)

    def lowering(self, layer, x, kind: tuple, compute):
        """The lowering of ``x`` for ``layer``, memoized when possible.

        ``kind`` distinguishes lowering layouts (patch-major vs
        kernel-major) and geometry; ``compute`` is a zero-argument
        callable producing the column matrix.
        """
        source = self._sources.get(id(x))
        if source is None or source[0] is not x:
            return compute()
        key = (id(layer), kind, source[1])
        col = self._entries.get(key)
        if col is None:
            col = compute()
            self._entries[key] = col
            self.misses += 1
        else:
            self.hits += 1
        return col

    def clear(self) -> None:
        """Drop every registered source and memoized lowering."""
        self._sources.clear()
        self._entries.clear()


_lowering_cache_stack: list[LoweringCache] = []


@contextmanager
def lowering_cache(cache: LoweringCache):
    """Expose ``cache`` to the compute layers for this context."""
    _lowering_cache_stack.append(cache)
    try:
        yield cache
    finally:
        _lowering_cache_stack.pop()


def active_lowering_cache() -> LoweringCache | None:
    """The innermost active lowering cache, or ``None``."""
    if not _lowering_cache_stack:
        return None
    return _lowering_cache_stack[-1]
