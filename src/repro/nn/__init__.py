"""A compact NumPy deep-learning framework.

Provides everything the FedTiny reproduction needs: layers with explicit
forward/backward passes, prunable parameters with masks, losses,
optimizers with masked updates, and weight initialization — the PyTorch
surface the paper assumes, rebuilt from scratch.
"""

from . import engine, functional, init
from .checkpoint import load_model, save_model
from .gradcheck import check_module_gradients, numerical_gradient
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from .loss import CrossEntropyLoss
from .module import Module
from .optim import SGD, ConstantLR, CosineLR, LRSchedule, StepLR
from .parameter import Parameter

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "ConstantLR",
    "CosineLR",
    "CrossEntropyLoss",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "LRSchedule",
    "Linear",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "StepLR",
    "check_module_gradients",
    "engine",
    "functional",
    "load_model",
    "init",
    "numerical_gradient",
    "save_model",
]
