"""Loss functions."""

from __future__ import annotations

import numpy as np

from . import functional as F

__all__ = ["CrossEntropyLoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels (mean reduction)."""

    def __init__(self) -> None:
        self._cache: tuple | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: {logits.shape[0]} logits vs "
                f"{labels.shape[0]} labels"
            )
        log_probs = F.log_softmax(logits, axis=1)
        n = logits.shape[0]
        loss = -log_probs[np.arange(n), labels].mean()
        self._cache = (log_probs, labels)
        return float(loss)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        log_probs, labels = self._cache
        n = log_probs.shape[0]
        grad = np.exp(log_probs)
        grad[np.arange(n), labels] -= 1.0
        grad /= n
        self._cache = None
        return grad.astype(np.float32)
