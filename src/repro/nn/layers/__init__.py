"""Layer implementations for the NumPy deep-learning framework."""

from .activation import ReLU
from .avgpool import AvgPool2d
from .batchnorm import BatchNorm2d
from .container import Flatten, Identity, Sequential
from .conv import Conv2d
from .linear import Linear
from .pooling import GlobalAvgPool2d, MaxPool2d

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sequential",
]
