"""Activation layers."""

from __future__ import annotations

import numpy as np

from .. import engine
from ..module import Module

__all__ = ["ReLU"]


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not engine.caching_enabled():
            self._cache = None
            return np.maximum(x, 0.0)
        self._cache = x > 0
        return x * self._cache

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * self._cache
        self._cache = None
        return grad_in

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "ReLU()"
