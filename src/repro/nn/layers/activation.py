"""Activation layers."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["ReLU"]


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "ReLU()"
