"""Batch normalization with explicit running-statistics control.

Batch normalization is central to FedTiny: the adaptive BN selection
module (paper Algorithm 1) recalibrates the running mean and variance of
each coarse-pruned candidate model by running *stats-only* forward
passes on device data, then aggregates the statistics on the server.

The layer therefore supports three behaviours:

- ``training=True``  — normalize with batch statistics and update the
  running statistics with the paper's momentum rule (Eq. 3):
  ``running = gamma * running + (1 - gamma) * batch``.
- ``training=False`` — normalize with the frozen running statistics.
- :meth:`BatchNorm2d.get_stats` / :meth:`BatchNorm2d.set_stats` — read
  and install running statistics, used by the server-side aggregation.
"""

from __future__ import annotations

import numpy as np

from .. import engine
from ..module import Module
from ..parameter import Parameter

__all__ = ["BatchNorm2d"]


class BatchNorm2d(Module):
    """Per-channel batch normalization for NCHW inputs."""

    def __init__(
        self, num_features: int, momentum: float = 0.9, eps: float = 1e-5
    ) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        # BN affine parameters are never pruned (paper Section IV-A2).
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer(
            "running_mean", np.zeros(num_features, dtype=np.float32)
        )
        self.register_buffer(
            "running_var", np.ones(num_features, dtype=np.float32)
        )
        self._cache: tuple | None = None

    # ------------------------------------------------------------------
    # Statistics access (used by adaptive BN selection)
    # ------------------------------------------------------------------
    def get_stats(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the running ``(mean, var)``."""
        return self.running_mean.copy(), self.running_var.copy()

    def set_stats(self, mean: np.ndarray, var: np.ndarray) -> None:
        """Install aggregated running statistics."""
        if mean.shape != (self.num_features,) or var.shape != (
            self.num_features,
        ):
            raise ValueError(
                f"stats must have shape ({self.num_features},), got "
                f"{mean.shape} and {var.shape}"
            )
        self._set_buffer("running_mean", mean)
        self._set_buffer("running_var", var)

    def reset_stats(self) -> None:
        """Reset running statistics to the identity transform."""
        self._set_buffer(
            "running_mean", np.zeros(self.num_features, dtype=np.float32)
        )
        self._set_buffer(
            "running_var", np.ones(self.num_features, dtype=np.float32)
        )

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected input (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            batch_mean = x.mean(axis=(0, 2, 3))
            batch_var = x.var(axis=(0, 2, 3))
            self._set_buffer(
                "running_mean",
                self.momentum * self.running_mean
                + (1.0 - self.momentum) * batch_mean,
            )
            self._set_buffer(
                "running_var",
                self.momentum * self.running_var
                + (1.0 - self.momentum) * batch_var,
            )
            mean, var = batch_mean, batch_var
        else:
            mean, var = self.running_mean, self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )
        # x_hat is a full activation-sized tensor; keep it only when a
        # backward pass can actually consume it.
        self._cache = (
            (x_hat, inv_std, x.shape) if engine.caching_enabled() else None
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, shape = self._cache
        n, _, h, w = shape
        m = n * h * w

        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))

        grad_x_hat = grad_out * self.gamma.data[None, :, None, None]
        if self.training:
            # Full batch-norm backward through the batch statistics.
            sum_grad = grad_x_hat.sum(axis=(0, 2, 3), keepdims=True)
            sum_grad_xhat = (grad_x_hat * x_hat).sum(
                axis=(0, 2, 3), keepdims=True
            )
            grad_in = (
                inv_std[None, :, None, None]
                / m
                * (m * grad_x_hat - sum_grad - x_hat * sum_grad_xhat)
            )
        else:
            grad_in = grad_x_hat * inv_std[None, :, None, None]
        self._cache = None
        return grad_in

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BatchNorm2d({self.num_features}, momentum={self.momentum})"
