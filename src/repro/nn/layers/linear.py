"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from ..init import kaiming_normal
from ..module import Module
from ..parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` with a prunable weight."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), rng), prunable=True
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32))
            if bias
            else None
        )
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), "
                f"got {x.shape}"
            )
        self._cache = x
        out = x @ self.weight.effective.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache
        self.weight.grad += grad_out.T @ x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        grad_in = grad_out @ self.weight.effective
        self._cache = None
        return grad_in

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Linear({self.in_features}, {self.out_features})"
