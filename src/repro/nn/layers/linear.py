"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from .. import engine
from ..init import kaiming_normal
from ..module import Module
from ..parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` with a prunable weight.

    Like :class:`~repro.nn.layers.Conv2d`, the layer drops all-zero
    output rows of the effective weight from its matmuls when the weight
    density is below the engine's ``density_threshold``; the dropped
    rows contribute exactly zero, so results are unchanged.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), rng), prunable=True
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32))
            if bias
            else None
        )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), "
                f"got {x.shape}"
            )
        w_eff = self.weight.effective
        active = engine.dispatch_rows(self.weight, self.out_features)
        if active is None:
            out = x @ w_eff.T
        else:
            out = np.zeros((x.shape[0], self.out_features), dtype=np.float32)
            if active.size:
                out[:, active] = x @ w_eff[active].T
        if self.bias is not None:
            out += self.bias.data
        self._cache = (
            (x, active, engine.weight_grads_masked())
            if engine.caching_enabled()
            else None
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, active, masked_grads = self._cache
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        w_eff = self.weight.effective
        if active is None:
            self.weight.grad += grad_out.T @ x
            grad_in = grad_out @ w_eff
        else:
            if masked_grads:
                if active.size:
                    self.weight.grad[active] += grad_out[:, active].T @ x
            else:
                self.weight.grad += grad_out.T @ x
            if active.size:
                grad_in = grad_out[:, active] @ w_eff[active]
            else:
                grad_in = np.zeros(
                    (grad_out.shape[0], self.in_features),
                    dtype=grad_out.dtype,
                )
        self._cache = None
        return grad_in

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Linear({self.in_features}, {self.out_features})"
