"""Container modules."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["Sequential", "Flatten", "Identity"]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = f"m{index}"
            setattr(self, name, module)
            self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def __iter__(self):
        for name in self._order:
            yield getattr(self, name)

    def append(self, module: Module) -> "Sequential":
        name = f"m{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self:
            x = module(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for module in reversed(list(self)):
            grad_out = module.backward(grad_out)
        return grad_out


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out.reshape(self._shape)
        self._shape = None
        return grad_in


class Identity(Module):
    """No-op module (useful as a residual shortcut placeholder)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
