"""Average pooling layer."""

from __future__ import annotations

import numpy as np

from .. import engine
from .. import functional as F
from ..module import Module

__all__ = ["AvgPool2d"]


class AvgPool2d(Module):
    """Average pooling over NCHW inputs."""

    def __init__(
        self, kernel_size: int, stride: int | None = None, padding: int = 0
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)
        col = F.im2col(x.reshape(n * c, 1, h, w), k, k, s, p)
        out = col.mean(axis=1).reshape(n, c, out_h, out_w)
        self._cache = (
            (x.shape, col.shape) if engine.caching_enabled() else None
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, col_shape = self._cache
        n, c, h, w = input_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        window = k * k
        grad_col = np.repeat(
            grad_out.reshape(-1, 1) / window, window, axis=1
        ).astype(grad_out.dtype)
        grad_in = F.col2im(grad_col, (n * c, 1, h, w), k, k, s, p)
        self._cache = None
        return grad_in.reshape(input_shape)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AvgPool2d(kernel_size={self.kernel_size}, "
            f"stride={self.stride})"
        )
