"""2-D convolution implemented with the im2col lowering."""

from __future__ import annotations

import numpy as np

from .. import engine
from .. import functional as F
from ..init import kaiming_normal
from ..module import Module
from ..parameter import Parameter

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Standard 2-D convolution over NCHW inputs.

    The weight is a prunable :class:`Parameter` of shape
    ``(out_channels, in_channels, kernel, kernel)``. The forward pass
    always uses the *effective* (masked) weight, and ``backward`` writes
    the gradient with respect to the effective weight, which is the RigL
    growth signal the progressive-pruning module consumes.

    When the weight density falls below the engine's
    ``density_threshold``, the layer drops the all-zero output rows of
    the reshaped effective weight from every matmul, so fully-pruned
    output channels cost nothing. The dropped rows contribute exactly
    zero, so the dispatch never changes the result; growth-signal weight
    gradients stay dense unless the caller opted into
    :func:`repro.nn.engine.masked_weight_grads`.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
            prunable=True,
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32))
            if bias
            else None
        )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)
        w_eff = self.weight.effective.reshape(self.out_channels, -1)
        active = engine.dispatch_rows(self.weight, self.out_channels)
        caching = engine.caching_enabled()
        # Inference-only lowering memoization: the column matrix is a
        # pure relayout of the input, so when the input is one of the
        # cache's registered (immutable) batches the stored lowering is
        # bit-identical to recomputing it. Training passes never consult
        # the cache (they own their cached col via self._cache).
        lowering = None if caching else engine.active_lowering_cache()
        if active is None:
            if lowering is not None:
                col = lowering.lowering(
                    self, x, ("im2col", k, s, p),
                    lambda: F.im2col(x, k, k, s, p),
                )
            else:
                col = F.im2col(x, k, k, s, p)
            out = col @ w_eff.T
            if self.bias is not None:
                out += self.bias.data
            out = out.reshape(n, out_h, out_w, self.out_channels).transpose(
                0, 3, 1, 2
            )
            self._cache = (x.shape, col, None, False) if caching else None
            return out
        # Sparse dispatch: kernel-major lowering and batched matmuls over
        # the active output rows only. With every channel pruned, the
        # column matrix is needed solely for dense growth-signal weight
        # gradients; the masked-grads decision is recorded in the cache
        # so backward stays coherent with what forward kept.
        masked_grads = engine.weight_grads_masked()
        need_col = active.size > 0 or (caching and not masked_grads)
        if not need_col:
            col = None
        elif lowering is not None:
            col = lowering.lowering(
                self, x, ("kernel_major", k, s, p),
                lambda: F.im2col_kernel_major(x, k, k, s, p),
            )
        else:
            col = F.im2col_kernel_major(x, k, k, s, p)
        out = np.zeros(
            (n, self.out_channels, out_h * out_w), dtype=np.float32
        )
        if active.size:
            out[:, active] = np.matmul(w_eff[active], col)
        if self.bias is not None:
            out += self.bias.data[None, :, None]
        out = out.reshape(n, self.out_channels, out_h, out_w)
        self._cache = (
            (x.shape, col, active, masked_grads) if caching else None
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, col, active, masked_grads = self._cache
        n, c_out, out_h, out_w = grad_out.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        w_eff = self.weight.effective.reshape(self.out_channels, -1)
        if active is None:
            grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)
            if self.bias is not None:
                self.bias.grad += grad_flat.sum(axis=0)
            self.weight.grad += (grad_flat.T @ col).reshape(self.weight.shape)
            grad_col = grad_flat @ w_eff
            grad_in = F.col2im(grad_col, input_shape, k, k, s, p)
            self._cache = None
            return grad_in
        # Sparse dispatch: batched kernel-major backward.
        grad3 = grad_out.reshape(n, c_out, out_h * out_w)
        if self.bias is not None:
            self.bias.grad += grad3.sum(axis=(0, 2))
        grad_w = self.weight.grad.reshape(self.out_channels, -1)
        if masked_grads:
            if active.size:
                grad3a = grad3[:, active]
                grad_w[active] += np.matmul(
                    grad3a, col.transpose(0, 2, 1)
                ).sum(axis=0)
        else:
            grad_w += np.matmul(grad3, col.transpose(0, 2, 1)).sum(axis=0)
            grad3a = grad3[:, active] if active.size else None
        if active.size == 0:
            self._cache = None
            return np.zeros(input_shape, dtype=grad_out.dtype)
        grad_col = np.matmul(w_eff[active].T, grad3a)
        grad_in = F.col2im_kernel_major(grad_col, input_shape, k, k, s, p)
        self._cache = None
        return grad_in

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )
