"""2-D convolution implemented with the im2col lowering."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..init import kaiming_normal
from ..module import Module
from ..parameter import Parameter

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Standard 2-D convolution over NCHW inputs.

    The weight is a prunable :class:`Parameter` of shape
    ``(out_channels, in_channels, kernel, kernel)``. The forward pass
    always uses the *effective* (masked) weight, and ``backward`` writes
    the gradient with respect to the effective weight, which is the RigL
    growth signal the progressive-pruning module consumes.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
            prunable=True,
        )
        self.bias = (
            Parameter(np.zeros(out_channels, dtype=np.float32))
            if bias
            else None
        )
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)
        col = F.im2col(x, k, k, s, p)  # (N*out_h*out_w, C*k*k)
        w_eff = self.weight.effective.reshape(self.out_channels, -1)
        out = col @ w_eff.T
        if self.bias is not None:
            out += self.bias.data
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(
            0, 3, 1, 2
        )
        self._cache = (x.shape, col)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, col = self._cache
        n, c_out, out_h, out_w = grad_out.shape
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)
        self.weight.grad += (grad_flat.T @ col).reshape(self.weight.shape)
        w_eff = self.weight.effective.reshape(self.out_channels, -1)
        grad_col = grad_flat @ w_eff
        grad_in = F.col2im(
            grad_col,
            input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        self._cache = None
        return grad_in

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )
