"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from .. import engine
from .. import functional as F
from ..module import Module

__all__ = ["MaxPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    """Max pooling over NCHW inputs."""

    def __init__(
        self, kernel_size: int, stride: int | None = None, padding: int = 0
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = F.conv_output_size(h, k, s, p)
        out_w = F.conv_output_size(w, k, s, p)
        # Pool each channel independently by folding channels into the
        # batch dimension before the im2col lowering.
        col = F.im2col(x.reshape(n * c, 1, h, w), k, k, s, p)
        if not engine.caching_enabled():
            # Forward-only: no argmax bookkeeping needed.
            self._cache = None
            return col.max(axis=1).reshape(n, c, out_h, out_w)
        argmax = col.argmax(axis=1)
        out = col[np.arange(col.shape[0]), argmax]
        out = out.reshape(n, c, out_h, out_w)
        self._cache = (x.shape, argmax, col.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, argmax, col_shape = self._cache
        n, c, h, w = input_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_col = np.zeros(col_shape, dtype=grad_out.dtype)
        grad_col[np.arange(col_shape[0]), argmax] = grad_out.reshape(-1)
        grad_in = F.col2im(grad_col, (n * c, 1, h, w), k, k, s, p)
        self._cache = None
        return grad_in.reshape(input_shape)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions, producing (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape if engine.caching_enabled() else None
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        grad_in = np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), self._shape
        ).astype(grad_out.dtype)
        self._shape = None
        return grad_in.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "GlobalAvgPool2d()"
