"""Numerical gradient checking for layer implementations.

Used by the test suite to validate every analytic ``backward`` against a
central-difference approximation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .module import Module

__all__ = ["numerical_gradient", "check_module_gradients"]


def numerical_gradient(
    f: Callable[[], float], array: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of a scalar function w.r.t. ``array``.

    ``f`` must recompute the scalar from the *current* contents of
    ``array`` each time it is called.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    rng: np.random.Generator,
    atol: float = 1e-2,
    rtol: float = 1e-2,
) -> None:
    """Assert analytic input and parameter gradients match numerics.

    The scalar objective is ``sum(output * R)`` for a fixed random ``R``,
    which exercises every output element.
    """
    x = x.astype(np.float64).astype(np.float32)
    probe = rng.normal(size=module(x).shape).astype(np.float32)

    def objective() -> float:
        return float((module(x) * probe).sum())

    # Analytic gradients.
    module.zero_grad()
    out = module(x)
    grad_in = module.backward(probe * np.ones_like(out))
    analytic_params = {
        name: p.grad.copy() for name, p in module.named_parameters()
    }

    numeric_in = numerical_gradient(objective, x)
    np.testing.assert_allclose(grad_in, numeric_in, atol=atol, rtol=rtol)

    for name, param in module.named_parameters():
        # numerical_gradient perturbs param.data in place through a view,
        # which the version-tagged effective-weight cache cannot see.
        def perturbed_objective(param=param) -> float:
            param.bump_version()
            return objective()

        numeric = numerical_gradient(perturbed_objective, param.data)
        # The final in-place restore is also invisible to the cache.
        param.bump_version()
        np.testing.assert_allclose(
            analytic_params[name],
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for parameter {name!r}",
        )
