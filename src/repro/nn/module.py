"""Base class for layers and models.

Modules form a tree. Assigning a :class:`Parameter`, a ``Module``, or a
buffer (via :meth:`Module.register_buffer`) to an attribute registers it
so that ``named_parameters`` / ``state_dict`` traverse the whole tree,
mirroring the registration convention users know from mainstream deep
learning frameworks.

Every module implements an explicit ``forward``/``backward`` pair.
``forward`` caches whatever the matching ``backward`` needs; ``backward``
consumes the cache, accumulates parameter gradients, and returns the
gradient with respect to the module input.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_params", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_children", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        params = self.__dict__.get("_params")
        if params is None:
            raise RuntimeError(
                "call Module.__init__() before assigning attributes"
            )
        # Remove any previous registration under this name.
        self._params.pop(name, None)
        self._children.pop(name, None)
        self._buffers.pop(name, None)
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._children[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register persistent, non-trainable state (e.g. BN running stats)."""
        self._buffers[name] = name
        object.__setattr__(self, name, np.asarray(value, dtype=np.float32))

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"{name!r} is not a registered buffer")
        object.__setattr__(self, name, np.asarray(value, dtype=np.float32))

    # ------------------------------------------------------------------
    # Forward / backward contract
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        yield from self._children.items()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._children.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(
        self, prefix: str = ""
    ) -> Iterator[tuple[str, Parameter]]:
        for name, param in self._params.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._children.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            full = f"{prefix}.{name}" if prefix else name
            yield full, getattr(self, name)
        for name, child in self._children.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", bool(mode))
        for child in self._children.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def free_caches(self) -> None:
        """Drop every layer's backward-pass cache tree-wide.

        Layers release their caches at the end of ``backward``, but a
        forward pass that is never backpropagated (an abandoned batch, a
        stats-only pass) leaves activation-sized arrays pinned. Calling
        this returns the model to its post-``backward`` memory footprint;
        a subsequent ``backward`` without a fresh ``forward`` raises.
        """
        for module in self.modules():
            if "_cache" in module.__dict__:
                object.__setattr__(module, "_cache", None)
            if "_shape" in module.__dict__:
                object.__setattr__(module, "_shape", None)

    # ------------------------------------------------------------------
    # Counting helpers
    # ------------------------------------------------------------------
    def num_parameters(self, prunable_only: bool = False) -> int:
        """Total scalar parameter count."""
        return sum(
            p.size
            for p in self.parameters()
            if not prunable_only or p.prunable
        )

    def num_active_parameters(self, prunable_only: bool = False) -> int:
        """Parameter count after masking."""
        return sum(
            p.num_active
            for p in self.parameters()
            if not prunable_only or p.prunable
        )

    def density(self) -> float:
        """Overall density of the prunable parameters."""
        total = self.num_parameters(prunable_only=True)
        if total == 0:
            return 1.0
        return self.num_active_parameters(prunable_only=True) / total

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter values, masks and buffers."""
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
            if param.mask is not None:
                state[name + ".__mask__"] = param.mask.copy()
        for name, buf in self.named_buffers():
            state["buffer::" + name] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values produced by :meth:`state_dict` (strict)."""
        params = dict(self.named_parameters())
        buffers = {name: name for name, _ in self.named_buffers()}
        for key, value in state.items():
            if key.startswith("buffer::"):
                name = key[len("buffer::") :]
                if name not in buffers:
                    raise KeyError(f"unexpected buffer {name!r}")
                self._assign_buffer(name, value)
            elif key.endswith(".__mask__"):
                name = key[: -len(".__mask__")]
                if name not in params:
                    raise KeyError(f"mask for unknown parameter {name!r}")
                params[name].set_mask(value.copy())
            else:
                if key not in params:
                    raise KeyError(f"unexpected parameter {key!r}")
                if params[key].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: "
                        f"{params[key].data.shape} vs {value.shape}"
                    )
                params[key].data = value.astype(np.float32).copy()
        # Parameters not mentioned with a mask key become dense again only
        # if the caller explicitly cleared them; loading is otherwise
        # non-destructive for masks.

    def _assign_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._children[part]
        module._set_buffer(parts[-1], value.copy())
