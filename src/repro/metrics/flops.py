"""Analytic FLOPs model for the framework's layers.

The paper reports "Max Training FLOPs" per device per round (Table I)
and the extra FLOPs of the adaptive BN selection module (Table II). We
compute both from a shape trace of the actual model:

- a multiply-accumulate counts as 2 FLOPs;
- backward costs twice the forward pass (one pass for the input
  gradient, one for the weight gradient), the standard estimate;
- sparse layers scale their compute by the layer's mask density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..nn.module import Module
from ..sparse.mask import MaskSet

__all__ = [
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "forward_flops",
    "training_flops_per_sample",
    "bn_update_flops_per_sample",
]


@dataclass(frozen=True)
class LayerProfile:
    """Shape and cost information for one leaf layer."""

    name: str
    kind: str
    weight_name: str | None
    forward_macs: float  # multiply-accumulates of the weight op
    elementwise_flops: float  # non-GEMM work (BN, ReLU, pooling)
    output_elements: int


class ModelProfile:
    """Per-layer FLOPs profile of a model at batch size one."""

    def __init__(self, layers: list[LayerProfile]) -> None:
        self.layers = layers

    def layer(self, name: str) -> LayerProfile:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no profiled layer named {name!r}")

    def weighted_layers(self) -> list[LayerProfile]:
        return [l for l in self.layers if l.weight_name is not None]

    def dense_forward_flops(self) -> float:
        """Forward FLOPs per sample with all layers dense."""
        return sum(
            2.0 * l.forward_macs + l.elementwise_flops for l in self.layers
        )


def profile_model(model: Module, input_shape: tuple[int, ...]) -> ModelProfile:
    """Trace a forward pass and build per-layer profiles.

    ``input_shape`` excludes the batch dimension, e.g. ``(3, 32, 32)``.
    """
    records: list[LayerProfile] = []
    leaves = [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(
            module,
            (Conv2d, Linear, BatchNorm2d, ReLU, MaxPool2d, GlobalAvgPool2d),
        )
    ]
    originals = {}

    def make_wrapper(name: str, module: Module):
        original_forward = module.forward

        def wrapped(x):
            out = original_forward(x)
            records.append(_profile_layer(name, module, x.shape, out.shape))
            return out

        return original_forward, wrapped

    try:
        for name, module in leaves:
            original, wrapped = make_wrapper(name, module)
            originals[(name, id(module))] = (module, original)
            object.__setattr__(module, "forward", wrapped)
        dummy = np.zeros((1,) + tuple(input_shape), dtype=np.float32)
        was_training = model.training
        model.eval()
        model(dummy)
        model.train(was_training)
    finally:
        for module, original in originals.values():
            if "forward" in module.__dict__:
                object.__delattr__(module, "forward")
    return ModelProfile(records)


def _profile_layer(
    name: str, module: Module, in_shape: tuple, out_shape: tuple
) -> LayerProfile:
    out_elements = int(np.prod(out_shape[1:]))
    if isinstance(module, Conv2d):
        k = module.kernel_size
        macs = float(
            k * k * module.in_channels * module.out_channels
            * out_shape[2] * out_shape[3]
        )
        return LayerProfile(name, "conv", name + ".weight", macs, 0.0,
                            out_elements)
    if isinstance(module, Linear):
        macs = float(module.in_features * module.out_features)
        return LayerProfile(name, "linear", name + ".weight", macs, 0.0,
                            out_elements)
    if isinstance(module, BatchNorm2d):
        return LayerProfile(name, "batchnorm", None, 0.0,
                            4.0 * out_elements, out_elements)
    if isinstance(module, ReLU):
        return LayerProfile(name, "relu", None, 0.0, float(out_elements),
                            out_elements)
    if isinstance(module, MaxPool2d):
        k = module.kernel_size
        return LayerProfile(name, "maxpool", None, 0.0,
                            float(k * k * out_elements), out_elements)
    if isinstance(module, GlobalAvgPool2d):
        in_elements = int(np.prod(in_shape[1:]))
        return LayerProfile(name, "gap", None, 0.0, float(in_elements),
                            out_elements)
    raise TypeError(f"unsupported layer type {type(module).__name__}")


def _layer_density(profile: LayerProfile, masks: MaskSet | None) -> float:
    if masks is None or profile.weight_name is None:
        return 1.0
    if profile.weight_name not in masks:
        return 1.0
    return masks.layer_density(profile.weight_name)


def forward_flops(profile: ModelProfile, masks: MaskSet | None = None) -> float:
    """Forward FLOPs per sample with the given sparsity."""
    total = 0.0
    for layer in profile.layers:
        density = _layer_density(layer, masks)
        total += 2.0 * layer.forward_macs * density + layer.elementwise_flops
    return total


def training_flops_per_sample(
    profile: ModelProfile,
    masks: MaskSet | None = None,
    dense_grad_layers: set[str] | frozenset[str] = frozenset(),
) -> float:
    """Forward + backward FLOPs per sample.

    ``dense_grad_layers`` names weight parameters whose *weight gradient*
    must be computed densely (e.g. PruneFL's full-size importance scores
    or FedTiny's grow-signal pass on the active block), overriding the
    sparse scaling for that term only.
    """
    total = 0.0
    for layer in profile.layers:
        density = _layer_density(layer, masks)
        forward = 2.0 * layer.forward_macs * density + layer.elementwise_flops
        input_grad = forward
        if (
            layer.weight_name is not None
            and layer.weight_name in dense_grad_layers
        ):
            weight_grad = 2.0 * layer.forward_macs + layer.elementwise_flops
        else:
            weight_grad = forward
        total += forward + input_grad + weight_grad
    return total


def bn_update_flops_per_sample(profile: ModelProfile,
                               masks: MaskSet | None = None) -> float:
    """FLOPs of one stats-update forward pass (adaptive BN selection).

    This is a plain forward pass: no gradients are computed, which is
    why the selection module is cheap (paper Section III-C).
    """
    return forward_flops(profile, masks)
