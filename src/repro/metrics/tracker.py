"""Experiment bookkeeping: per-round records and run summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundRecord", "RunResult"]


@dataclass(frozen=True)
class RoundRecord:
    """Metrics captured after one federated round."""

    round_index: int
    test_accuracy: float
    test_loss: float
    density: float
    upload_bytes: int
    download_bytes: int
    train_flops: float
    # Cumulative simulated wall-clock seconds at the end of this round
    # (0.0 for records predating the simulation layer).
    sim_time_seconds: float = 0.0
    # Participants dropped (straggler cut-off or offline) since the
    # previous recorded round.
    dropped_clients: int = 0
    # Failure accounting (see repro.fl.faults), all deltas since the
    # previous recorded round and all 0 when fault injection is off:
    # faults drawn by the schedule, extra delivery attempts consumed,
    # uploads rejected by the ingest validator, and defense-layer
    # recovery actions (pool respawns, executor degradation, dedups,
    # retry-exhausted exclusions).
    faults_injected: int = 0
    retries: int = 0
    quarantined_uploads: int = 0
    recovery_actions: int = 0


@dataclass
class RunResult:
    """Full trajectory and summary statistics of one experiment run."""

    method: str
    dataset: str
    model: str
    target_density: float
    rounds: list[RoundRecord] = field(default_factory=list)
    max_training_flops_per_round: float = 0.0
    memory_footprint_bytes: int = 0
    selection_comm_bytes: int = 0
    selection_flops: float = 0.0
    metadata: dict = field(default_factory=dict)
    # Structured per-event failure log (FailureRecord instances), in
    # occurrence order; empty unless fault injection was enabled.
    failures: list = field(default_factory=list)

    def record_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)
        self.max_training_flops_per_round = max(
            self.max_training_flops_per_round, record.train_flops
        )

    @property
    def final_accuracy(self) -> float:
        if not self.rounds:
            raise ValueError("run has no recorded rounds")
        return self.rounds[-1].test_accuracy

    @property
    def best_accuracy(self) -> float:
        if not self.rounds:
            raise ValueError("run has no recorded rounds")
        return max(r.test_accuracy for r in self.rounds)

    @property
    def final_density(self) -> float:
        if not self.rounds:
            raise ValueError("run has no recorded rounds")
        return self.rounds[-1].density

    @property
    def total_upload_bytes(self) -> int:
        return sum(r.upload_bytes for r in self.rounds)

    @property
    def total_download_bytes(self) -> int:
        return sum(r.download_bytes for r in self.rounds)

    @property
    def sim_time_seconds(self) -> float:
        """Total simulated wall-clock seconds (cumulative, last round)."""
        if not self.rounds:
            return 0.0
        return self.rounds[-1].sim_time_seconds

    @property
    def total_dropped_clients(self) -> int:
        return sum(r.dropped_clients for r in self.rounds)

    @property
    def total_faults_injected(self) -> int:
        return sum(r.faults_injected for r in self.rounds)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.rounds)

    @property
    def total_quarantined_uploads(self) -> int:
        return sum(r.quarantined_uploads for r in self.rounds)

    @property
    def total_recovery_actions(self) -> int:
        return sum(r.recovery_actions for r in self.rounds)

    @property
    def total_comm_bytes(self) -> int:
        return (
            self.total_upload_bytes
            + self.total_download_bytes
            + self.selection_comm_bytes
        )

    def accuracy_curve(self) -> list[tuple[int, float]]:
        return [(r.round_index, r.test_accuracy) for r in self.rounds]

    def wall_clock_curve(self) -> list[tuple[float, float]]:
        """(simulated seconds, accuracy) pairs — accuracy vs wall clock."""
        return [(r.sim_time_seconds, r.test_accuracy) for r in self.rounds]

    def to_dict(self) -> dict:
        """Plain-dict form for JSON dumps in EXPERIMENTS.md tooling."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "model": self.model,
            "target_density": self.target_density,
            "final_accuracy": self.final_accuracy if self.rounds else None,
            "best_accuracy": self.best_accuracy if self.rounds else None,
            "final_density": self.final_density if self.rounds else None,
            "max_training_flops_per_round": self.max_training_flops_per_round,
            "memory_footprint_bytes": self.memory_footprint_bytes,
            "selection_comm_bytes": self.selection_comm_bytes,
            "selection_flops": self.selection_flops,
            "total_comm_bytes": self.total_comm_bytes if self.rounds else 0,
            "sim_time_seconds": self.sim_time_seconds,
            "total_dropped_clients": self.total_dropped_clients,
            "total_faults_injected": self.total_faults_injected,
            "total_retries": self.total_retries,
            "total_quarantined_uploads": self.total_quarantined_uploads,
            "total_recovery_actions": self.total_recovery_actions,
            "failures": [vars(f) for f in self.failures],
            "num_rounds": len(self.rounds),
            "metadata": dict(self.metadata),
        }
