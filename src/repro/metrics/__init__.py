"""Cost and quality metrics: FLOPs, memory, accuracy, run tracking."""

from .accuracy import EvalResult, evaluate
from .flops import (
    LayerProfile,
    ModelProfile,
    bn_update_flops_per_sample,
    forward_flops,
    profile_model,
    training_flops_per_sample,
)
from .memory import MemoryBreakdown, device_memory_footprint
from .tracker import RoundRecord, RunResult

__all__ = [
    "EvalResult",
    "LayerProfile",
    "MemoryBreakdown",
    "ModelProfile",
    "RoundRecord",
    "RunResult",
    "bn_update_flops_per_sample",
    "device_memory_footprint",
    "evaluate",
    "forward_flops",
    "profile_model",
    "training_flops_per_sample",
]
