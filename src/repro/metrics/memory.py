"""Device memory-footprint model (paper Table I's "Memory Footprint").

The footprint of local training is the storage for parameters plus
gradients (masked tensors stored sparsely), plus any method-specific
state:

- PruneFL keeps full-size importance scores for every prunable
  parameter (the paper's core criticism: dense memory on device);
- FedTiny keeps only the O(a_t^l) top-K gradient buffer;
- FedDST materializes a dense gradient for one layer at a time during
  on-device mask adjustment;
- dense methods (FedAvg, LotteryFL's local training) store everything
  densely.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.module import Module
from ..sparse.mask import MaskSet, prunable_parameters
from ..sparse.storage import (
    INDEX_BYTES,
    VALUE_BYTES,
    bytes_to_mb,
    dense_bytes,
    sparse_bytes,
)

__all__ = ["MemoryBreakdown", "device_memory_footprint"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes per component of the on-device training footprint."""

    parameter_bytes: int
    gradient_bytes: int
    extra_state_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.parameter_bytes + self.gradient_bytes +
            self.extra_state_bytes
        )

    @property
    def total_mb(self) -> float:
        return bytes_to_mb(self.total_bytes)


def device_memory_footprint(
    model: Module,
    masks: MaskSet | None = None,
    dense_importance_scores: bool = False,
    topk_buffer_entries: int = 0,
    per_layer_dense_grad: bool = False,
) -> MemoryBreakdown:
    """Compute the on-device training footprint.

    Args:
        model: the (possibly masked) model being trained.
        masks: mask set describing sparsity; ``None`` reads masks off the
            model parameters directly.
        dense_importance_scores: add a dense float per prunable
            parameter (PruneFL-style adaptive pruning state).
        topk_buffer_entries: number of (index, value) slots in streaming
            top-K buffers (FedTiny's grow-signal state).
        per_layer_dense_grad: add a dense gradient for the largest
            prunable layer (FedDST's layer-at-a-time mask adjustment).
    """
    if masks is None:
        masks = MaskSet.from_model(model)

    param_bytes = 0
    grad_bytes = 0
    largest_layer = 0
    total_prunable = 0
    for name, param in model.named_parameters():
        if param.prunable and name in masks:
            active = masks.layer_active(name)
            param_bytes += sparse_bytes(active, param.size)
            # The gradient shares the sparsity pattern: values only.
            grad_bytes += min(active * VALUE_BYTES, dense_bytes(param.size))
            largest_layer = max(largest_layer, param.size)
            total_prunable += param.size
        else:
            param_bytes += dense_bytes(param.size)
            grad_bytes += dense_bytes(param.size)
    # Buffers (BN running statistics) are parameters-without-gradients.
    for _, buf in model.named_buffers():
        param_bytes += dense_bytes(int(buf.size))

    extra = 0
    if dense_importance_scores:
        extra += dense_bytes(total_prunable)
    if topk_buffer_entries > 0:
        extra += topk_buffer_entries * (VALUE_BYTES + INDEX_BYTES)
    if per_layer_dense_grad:
        extra += dense_bytes(largest_layer)
    return MemoryBreakdown(param_bytes, grad_bytes, extra)


def _unused_prunable_check(model: Module) -> int:
    """Total prunable parameter count (kept for external callers)."""
    return sum(p.size for _, p in prunable_parameters(model))
