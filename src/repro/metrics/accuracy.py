"""Model evaluation helpers."""

from __future__ import annotations

import numpy as np

from ..data.dataset import Dataset
from ..nn import engine
from ..nn.loss import CrossEntropyLoss
from ..nn.module import Module

__all__ = ["evaluate", "EvalResult"]


class EvalResult:
    """Top-1 accuracy and mean loss over a dataset."""

    def __init__(self, accuracy: float, loss: float, num_samples: int) -> None:
        self.accuracy = accuracy
        self.loss = loss
        self.num_samples = num_samples

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EvalResult(accuracy={self.accuracy:.4f}, loss={self.loss:.4f}, "
            f"n={self.num_samples})"
        )


def evaluate(
    model: Module, dataset: Dataset, batch_size: int = 128
) -> EvalResult:
    """Top-1 accuracy and mean cross-entropy loss in eval mode."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    was_training = model.training
    model.eval()
    # Forward-only pass: drop stale training caches up front and keep
    # the layers from recording new ones. (Duck-typed stand-in models
    # without free_caches are accepted, as in Module.eval's contract.)
    free_caches = getattr(model, "free_caches", None)
    if free_caches is not None:
        free_caches()
    loss_fn = CrossEntropyLoss()
    correct = 0
    loss_sum = 0.0
    with engine.inference_mode():
        for images, labels in dataset.batches(batch_size):
            logits = model(images)
            loss_sum += loss_fn(logits, labels) * len(labels)
            correct += int((logits.argmax(axis=1) == labels).sum())
    model.train(was_training)
    n = len(dataset)
    return EvalResult(correct / n, loss_sum / n, n)
