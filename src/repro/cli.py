"""Command-line interface.

Usage::

    python -m repro list
    python -m repro run --method fedtiny --model resnet18 \
        --dataset cifar10 --density 0.05 --scale tiny
    python -m repro experiment table1 --scale bench
    python -m repro bench --out BENCH_sparse_compute.json
    python -m repro bench --suite round_loop --out BENCH_round_loop.json
    python -m repro lint src/ --format json
    python -m repro chaos --faults chaos --scale tiny
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .data.synthetic import DATASET_BUILDERS
from .experiments import SCALES, run_experiment
from .experiments import paper as paper_experiments
from .fl.executor import available_executors
from .fl.policies import available_policies
from .methods import method_names, method_summaries
from .nn import engine
from .nn.models import available_models
from .sparse.storage import bytes_to_mb

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig2": paper_experiments.fig2_block_partition,
    "fig3": paper_experiments.fig3_density_sweep,
    "table1": paper_experiments.table1_accuracy_and_cost,
    "fig4": paper_experiments.fig4_ablation,
    "fig5": paper_experiments.fig5_pool_size,
    "table2": paper_experiments.table2_bn_overhead,
    "table3": paper_experiments.table3_schedules,
    "fig6": paper_experiments.fig6_noniid,
    "table4": paper_experiments.table4_small_model_datasets,
    "table5": paper_experiments.table5_small_model_densities,
}


def _density_threshold(raw: str) -> float:
    """Argparse type for ``--density-threshold``: a float in [0, 1].

    Rejecting bad values at parse time keeps the error at the command
    line (``argument --density-threshold: ...``) instead of a traceback
    out of :func:`repro.nn.engine.configure` mid-run.
    """
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a float in [0, 1], got {raw!r}"
        ) from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be in [0, 1], got {raw}"
        )
    return value


def _positive_seconds(raw: str) -> float:
    """Argparse type for transport durations: a float > 0."""
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds, got {raw!r}"
        ) from None
    if not value > 0.0:
        raise argparse.ArgumentTypeError(
            f"must be > 0 seconds, got {raw}"
        )
    return value


def _nonnegative_int(raw: str) -> int:
    """Argparse type for retry counts: an int >= 0."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {raw!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, got {raw}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "FedTiny reproduction: distributed pruning towards tiny "
            "neural networks in federated learning (ICDCS 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list methods, models, datasets, scales")

    run = sub.add_parser("run", help="run one federated pruning experiment")
    run.add_argument("--method", required=True, choices=method_names())
    run.add_argument("--model", default="resnet18",
                     choices=available_models())
    run.add_argument("--dataset", default="cifar10",
                     choices=sorted(DATASET_BUILDERS))
    run.add_argument("--density", type=float, default=0.05)
    run.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    run.add_argument("--alpha", type=float, default=0.5,
                     help="Dirichlet alpha; <=0 means iid")
    run.add_argument("--rounds", type=int, default=None)
    run.add_argument("--pool-size", type=int, default=None)
    run.add_argument("--local-epochs", type=int, default=None,
                     help="override the preset's local epochs per round")
    run.add_argument("--participation-fraction", type=float, default=None,
                     help="fraction of clients sampled each round")
    run.add_argument("--quantize-bits", type=int, default=None,
                     help="quantize client uploads to this many bits")
    run.add_argument("--executor", default=None,
                     choices=available_executors(),
                     help="client execution backend (default: serial)")
    run.add_argument("--fleet", default=None,
                     help="device fleet spec: uniform or "
                          "heterogeneous[:spread], e.g. heterogeneous:16")
    run.add_argument("--round-policy", default=None,
                     choices=available_policies(),
                     help="round completion policy (default: sync)")
    run.add_argument("--deadline-fraction", type=float, default=None,
                     help="deadline policy: round budget as a multiple "
                          "of the median device's completion time")
    run.add_argument("--deadline-over-select", type=float, default=None,
                     help="deadline policy: participant over-selection "
                          "multiplier (>= 1)")
    run.add_argument("--dropout-rate", type=float, default=None,
                     help="dropout policy: per-round client failure "
                          "probability")
    run.add_argument("--async-buffer-fraction", type=float, default=None,
                     help="async policy: fraction of uploads that "
                          "closes the round")
    run.add_argument("--staleness-discount", type=float, default=None,
                     help="async policy: per-round weight discount for "
                          "late uploads")
    run.add_argument("--client-backend", default=None,
                     choices=("materialized", "virtual"),
                     help="client population backend: 'virtual' keeps "
                          "clients as IDs until selected (default: "
                          "materialized)")
    run.add_argument("--virtual-shard-size", type=int, default=None,
                     help="virtual backend: derive per-ID overlapping "
                          "shards of this size instead of an exact "
                          "partition (lets the population exceed the "
                          "dataset)")
    run.add_argument("--aggregation-fan-in", type=int, default=None,
                     help="reduce uploads tree-wise through simulated "
                          "edge-aggregator groups of this size")
    run.add_argument("--density-threshold", type=_density_threshold,
                     default=None,
                     help="enable sparse row dispatch below this weight "
                          "density (default 0: off, byte-identical to "
                          "the dense engine)")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject deterministic faults: a preset name "
                          "(chaos, flaky_clients, bad_transport) or "
                          "'kind:prob,...' pairs, e.g. "
                          "corrupt_payload:0.1,client_timeout:0.05")
    run.add_argument("--retry-max-attempts", type=int, default=None,
                     help="delivery attempts per client per round "
                          "under fault injection (default 3)")
    run.add_argument("--retry-backoff-seconds", type=float, default=None,
                     help="base simulated backoff between retries "
                          "(default 0.5)")
    run.add_argument("--retry-timeout-seconds", type=float, default=None,
                     help="simulated seconds a client_timeout fault "
                          "costs (default 5)")
    run.add_argument("--transport-timeout", type=_positive_seconds,
                     default=None,
                     help="network executor: per-request socket timeout "
                          "and in-flight task reassignment budget in "
                          "real seconds (default 30)")
    run.add_argument("--heartbeat-interval", type=_positive_seconds,
                     default=None,
                     help="network executor: worker heartbeat period in "
                          "real seconds; liveness expires after 5 "
                          "missed beats (default 1)")
    run.add_argument("--max-reconnects", type=_nonnegative_int,
                     default=None,
                     help="network executor: reconnect attempts per "
                          "worker request and reassignments per task "
                          "before the client is excluded (default 3)")
    run.add_argument("--checkpoint-dir", default=None,
                     help="snapshot the run here for crash-resume")
    run.add_argument("--checkpoint-every", type=int, default=None,
                     help="rounds between checkpoints (default 1)")
    run.add_argument("--resume", action="store_true",
                     help="resume from the latest checkpoint in "
                          "--checkpoint-dir, bit-for-bit")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", action="store_true",
                     help="emit the result record as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="run an experiment under a fault schedule and assert the "
             "recovery invariants",
        description=(
            "Runs the same experiment twice — fault-free, then under "
            "the given deterministic fault schedule — and asserts the "
            "recovery contract: the faulted run completes every round, "
            "every injected fault is accounted (retried, quarantined, "
            "deduplicated, or excluded) on the round records, and when "
            "no client exhausted its retries the faulted run's metrics "
            "are bitwise identical to the fault-free run. Exit codes: "
            "0 all invariants hold, 1 a recovery invariant failed."
        ),
    )
    chaos.add_argument("--faults", default="chaos", metavar="SPEC",
                       help="preset name or 'kind:prob,...' spec "
                            "(default: the chaos preset)")
    chaos.add_argument("--method", default="fedtiny",
                       choices=method_names())
    chaos.add_argument("--model", default="resnet18",
                       choices=available_models())
    chaos.add_argument("--dataset", default="cifar10",
                       choices=sorted(DATASET_BUILDERS))
    chaos.add_argument("--density", type=float, default=0.05)
    chaos.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    chaos.add_argument("--rounds", type=int, default=None)
    chaos.add_argument("--executor", default=None,
                       choices=available_executors())
    chaos.add_argument("--retry-max-attempts", type=int, default=None)
    chaos.add_argument("--transport-timeout", type=_positive_seconds,
                       default=None)
    chaos.add_argument("--heartbeat-interval", type=_positive_seconds,
                       default=None)
    chaos.add_argument("--max-reconnects", type=_nonnegative_int,
                       default=None)
    chaos.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep",
        help="run a journaled, crash-resumable grid of experiments",
        description=(
            "Expands a declarative grid (--grid axis=v1,v2, repeatable) "
            "into a queue of runs and executes them with per-run "
            "process isolation, watchdog timeouts, retry/quarantine, "
            "and an fsync'd journal: a sweep killed at any point "
            "resumes with --resume and produces a results store "
            "byte-identical to an uninterrupted sweep. Exit codes: "
            "0 complete, 1 aborted via --max-failures, 2 usage or "
            "journal error, 3 killed by an injected fault (resume "
            "with --resume)."
        ),
    )
    sweep.add_argument("--out", required=True,
                       help="sweep directory (journal, index, per-run "
                            "results, assembled results.json)")
    sweep.add_argument("--grid", action="append", default=None,
                       metavar="AXIS=V1,V2",
                       help="grid axis: a core field (method, model, "
                            "dataset, density, scale, alpha, seed, "
                            "pool_size) or any FLConfig knob; "
                            "repeatable, cartesian product")
    sweep.add_argument("--method", default="fedtiny",
                       choices=method_names(),
                       help="base method for axes not in --grid")
    sweep.add_argument("--model", default="resnet18",
                       choices=available_models())
    sweep.add_argument("--dataset", default="cifar10",
                       choices=sorted(DATASET_BUILDERS))
    sweep.add_argument("--density", type=float, default=0.05)
    sweep.add_argument("--scale", default="bench",
                       choices=sorted(SCALES))
    sweep.add_argument("--alpha", type=float, default=0.5,
                       help="Dirichlet alpha; <=0 means iid")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--pool-size", type=int, default=None)
    sweep.add_argument("--scheduler", default="grid",
                       help="run-order scheduler: grid, random, or a "
                            "registered tuner (default: grid)")
    sweep.add_argument("--sweep-seed", type=int, default=0,
                       help="seed for the scheduler shuffle and the "
                            "sweep-level fault draws")
    sweep.add_argument("--isolation", default="process",
                       choices=("process", "serial"),
                       help="run each experiment in its own child "
                            "process (default) or in-process")
    sweep.add_argument("--watchdog", type=_positive_seconds,
                       default=300.0, metavar="SECONDS",
                       help="kill a run after this many real seconds "
                            "(process isolation; default 300)")
    sweep.add_argument("--max-failures", type=_nonnegative_int,
                       default=None,
                       help="abort the sweep once more than this many "
                            "runs are quarantined")
    sweep.add_argument("--retry-max-attempts", type=int, default=None,
                       help="attempts per run before quarantine "
                            "(default 3)")
    sweep.add_argument("--faults", default=None, metavar="SPEC",
                       help="sweep-level fault injection: a preset "
                            "(sweep_chaos) or 'kind:prob,...' over "
                            "run_crash, run_hang, journal_torn_write")
    sweep.add_argument("--checkpoint-runs", action="store_true",
                       help="give each run a checkpoint dir so an "
                            "interrupted run also resumes mid-round")
    sweep.add_argument("--resume", action="store_true",
                       help="resume the journaled sweep in --out")
    sweep.add_argument("--json", action="store_true",
                       help="emit the sweep report as JSON")

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("experiment_id", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--scale", default="bench",
                            choices=sorted(SCALES))
    experiment.add_argument(
        "--plot", action="store_true",
        help="also render the figure as an ASCII chart (fig3/4/5/6)",
    )

    bench = sub.add_parser(
        "bench",
        help="run a micro-benchmark suite (compute, transport, selection)",
        description=(
            "Measure a performance suite against its pre-change "
            "reference path and emit a machine-readable JSON record: "
            "'sparse_compute' times Conv2d/Linear forward+backward "
            "across a density x shape grid; 'round_loop' times the "
            "broadcast/upload/aggregate transport of one federated "
            "round across a clients x density x model grid; "
            "'candidate_selection' times the adaptive-BN selection "
            "protocol end to end across a pool x clients x model grid "
            "and reports the paper's Table 2 overhead ratios; "
            "'fleet_scale' runs virtual-fleet rounds across a "
            "population grid up to 1M simulated clients and records "
            "per-round RSS/tracemalloc alongside wall-clock."
        ),
    )
    bench.add_argument("--suite", default="sparse_compute",
                       choices=("sparse_compute", "round_loop",
                                "candidate_selection", "fleet_scale"),
                       help="which benchmark grid to run")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: "
                            "BENCH_<suite>.json)")
    bench.add_argument("--repeats", type=int, default=7,
                       help="interleaved timing samples per variant")
    bench.add_argument("--quick", action="store_true",
                       help="smaller grid for CI smoke runs")

    lint = sub.add_parser(
        "lint",
        help="statically check the repo's determinism/cache/shm contracts",
        description=(
            "AST-based analyzer enforcing the codebase's standing "
            "invariants: seeded RNGs and no set-order dependence "
            "(determinism), bump_version() after in-place writes to "
            "version-tagged parameter storage (cache-coherence), "
            "close()/unlink() on every SharedMemory exit path "
            "(shm-lifecycle), registered plugin subclasses "
            "(registry-completeness), fixed-order accumulation in "
            "golden-guarded modules (float-accumulation), and "
            "inference_mode() around evaluate paths (engine-mode). "
            "Exit codes: 0 clean, 1 findings, 2 analysis error."
        ),
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to analyze "
                           "(default: src)")
    lint.add_argument("--format", default="human",
                      choices=("human", "json"),
                      help="report format (json follows the "
                           "repro-lint/v1 schema)")
    lint.add_argument("--rule", action="append", default=None,
                      metavar="RULE_ID",
                      help="run only this rule (repeatable; default: "
                           "all rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    return parser


def _command_list() -> int:
    print("methods:")
    summaries = method_summaries()
    width = max(len(name) for name in summaries)
    for name, summary in summaries.items():
        print(f"  {name:<{width}}  {summary}")
    print("models   :", ", ".join(available_models()))
    print("datasets :", ", ".join(sorted(DATASET_BUILDERS)))
    print("scales   :", ", ".join(sorted(SCALES)))
    print("executors:", ", ".join(available_executors()))
    print("policies :", ", ".join(available_policies()))
    print("experiments:", ", ".join(sorted(_EXPERIMENTS)))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    alpha = None if args.alpha is not None and args.alpha <= 0 else args.alpha
    if args.density_threshold is not None:
        engine.configure(density_threshold=args.density_threshold)
        # Spawned executor workers read the knob from the environment.
        os.environ["REPRO_DENSITY_THRESHOLD"] = str(args.density_threshold)
    result = run_experiment(
        args.method,
        args.model,
        args.dataset,
        args.density,
        scale=args.scale,
        dirichlet_alpha=alpha,
        seed=args.seed,
        pool_size=args.pool_size,
        rounds=args.rounds,
        local_epochs=args.local_epochs,
        participation_fraction=args.participation_fraction,
        quantize_bits=args.quantize_bits,
        executor=args.executor,
        fleet=args.fleet,
        round_policy=args.round_policy,
        deadline_fraction=args.deadline_fraction,
        deadline_over_select=args.deadline_over_select,
        dropout_rate=args.dropout_rate,
        async_buffer_fraction=args.async_buffer_fraction,
        staleness_discount=args.staleness_discount,
        client_backend=args.client_backend,
        virtual_shard_size=args.virtual_shard_size,
        aggregation_fan_in=args.aggregation_fan_in,
        faults=args.faults,
        retry_max_attempts=args.retry_max_attempts,
        retry_backoff_seconds=args.retry_backoff_seconds,
        retry_timeout_seconds=args.retry_timeout_seconds,
        transport_timeout=args.transport_timeout,
        heartbeat_interval=args.heartbeat_interval,
        max_reconnects=args.max_reconnects,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, default=str))
        return 0
    print(f"method            : {result.method}")
    print(f"model / dataset   : {result.model} / {result.dataset}")
    print(f"target density    : {result.target_density:g}")
    print(f"final density     : {result.final_density:.5f}")
    print(f"final accuracy    : {result.final_accuracy:.4f}")
    print(f"best accuracy     : {result.best_accuracy:.4f}")
    print(f"max FLOPs/round   : {result.max_training_flops_per_round:.3e}")
    print(f"memory footprint  : "
          f"{bytes_to_mb(result.memory_footprint_bytes):.3f} MB")
    print(f"total comm        : {bytes_to_mb(result.total_comm_bytes):.2f} MB")
    print(f"sim wall clock    : {result.sim_time_seconds:.2f} s")
    if result.total_dropped_clients:
        print(f"dropped clients   : {result.total_dropped_clients}")
    if result.total_faults_injected:
        print(f"faults injected   : {result.total_faults_injected}")
        print(f"retries           : {result.total_retries}")
        print(f"quarantined       : {result.total_quarantined_uploads}")
        print(f"recovery actions  : {result.total_recovery_actions}")
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from .fl.faults import FaultSchedule

    try:
        schedule = FaultSchedule.parse(args.faults, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    common = dict(
        scale=args.scale,
        seed=args.seed,
        rounds=args.rounds,
        executor=args.executor,
        retry_max_attempts=args.retry_max_attempts,
        transport_timeout=args.transport_timeout,
        heartbeat_interval=args.heartbeat_interval,
        max_reconnects=args.max_reconnects,
    )
    print(f"fault schedule    : {schedule.spec_string()}")
    print("running fault-free baseline ...")
    baseline = run_experiment(
        args.method, args.model, args.dataset, args.density, **common,
    )
    print("running faulted twin ...")
    faulted = run_experiment(
        args.method, args.model, args.dataset, args.density,
        faults=args.faults, **common,
    )

    problems: list[str] = []
    if len(faulted.rounds) != len(baseline.rounds):
        problems.append(
            f"faulted run recorded {len(faulted.rounds)} rounds, "
            f"baseline {len(baseline.rounds)}"
        )
    excluded = [
        f for f in faulted.failures if f.action == "excluded"
    ]
    quarantine_records = [
        f for f in faulted.failures if f.action == "quarantined"
    ]
    if len(quarantine_records) != faulted.total_quarantined_uploads:
        problems.append(
            f"{faulted.total_quarantined_uploads} quarantined uploads "
            f"but {len(quarantine_records)} quarantine records"
        )
    if faulted.total_faults_injected and not faulted.failures:
        problems.append(
            f"{faulted.total_faults_injected} faults injected but the "
            "failure log is empty"
        )
    extra_dropped = (
        faulted.total_dropped_clients - baseline.total_dropped_clients
    )
    if extra_dropped != len(excluded):
        problems.append(
            f"{len(excluded)} retry-exhausted exclusions but "
            f"{extra_dropped} extra dropped clients accounted"
        )
    if not excluded:
        # Every fault deterministically recovered: the faulted run must
        # be bitwise identical to the baseline (only the simulated
        # clock, which absorbed the backoff, may differ).
        pairs = zip(baseline.rounds, faulted.rounds)
        for base_round, fault_round in pairs:
            if (
                base_round.test_accuracy != fault_round.test_accuracy
                or base_round.test_loss != fault_round.test_loss
                or base_round.density != fault_round.density
            ):
                problems.append(
                    f"round {base_round.round_index}: recovered run "
                    "diverged from the fault-free baseline"
                )
                break
    print(f"faults injected   : {faulted.total_faults_injected}")
    print(f"retries           : {faulted.total_retries}")
    print(f"quarantined       : {faulted.total_quarantined_uploads}")
    print(f"recovery actions  : {faulted.total_recovery_actions}")
    print(f"excluded clients  : {len(excluded)}")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    verdict = (
        "bitwise-equal to the fault-free baseline" if not excluded
        else "partial cohorts accounted on the round records"
    )
    print(f"OK: all recovery invariants hold ({verdict})")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from .experiments.journal import JournalError
    from .experiments.specs import expand_grid, parse_axis_value
    from .experiments.sweep import SweepKilled, SweepOrchestrator
    from .fl.faults import RetryPolicy

    axes: dict[str, list] = {}
    for item in args.grid or []:
        name, sep, values = item.partition("=")
        if not sep or not values:
            print(f"error: malformed --grid {item!r}; expected "
                  "AXIS=V1,V2", file=sys.stderr)
            return 2
        axes[name.strip()] = [
            parse_axis_value(v) for v in values.split(",")
        ]
    alpha = None if args.alpha is not None and args.alpha <= 0 else args.alpha
    base = {
        "method": args.method,
        "model": args.model,
        "dataset": args.dataset,
        "target_density": args.density,
        "scale": args.scale,
        "dirichlet_alpha": alpha,
        "seed": args.seed,
        "pool_size": args.pool_size,
    }
    retry = RetryPolicy() if args.retry_max_attempts is None else \
        RetryPolicy(max_attempts=args.retry_max_attempts)
    try:
        # On a bare resume the journaled index is authoritative; a
        # resume *with* grid axes verifies them against the journal.
        specs = None if (args.resume and not axes) else \
            expand_grid(axes, base)
        orchestrator = SweepOrchestrator(
            args.out,
            specs,
            resume=args.resume,
            scheduler=args.scheduler,
            sweep_seed=args.sweep_seed,
            faults=args.faults,
            isolation=args.isolation,
            watchdog_seconds=args.watchdog,
            retry=retry,
            max_failures=args.max_failures,
            checkpoint_runs=args.checkpoint_runs,
        )
        report = orchestrator.execute()
    except (JournalError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepKilled as exc:
        print(f"sweep killed: {exc}", file=sys.stderr)
        print(f"resume with: repro sweep --out {args.out} --resume",
              file=sys.stderr)
        return 3
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        for line in report.summary_lines():
            print(line)
    return 1 if report.aborted else 0


def _command_experiment(args: argparse.Namespace) -> int:
    output = _EXPERIMENTS[args.experiment_id](scale=args.scale)
    print(output)
    if args.plot:
        _render_plots(output)
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from .perf import run_candidate_selection_bench, run_fleet_scale_bench, \
        run_round_loop_bench, run_sparse_compute_bench, write_bench_json

    out = args.out or f"BENCH_{args.suite}.json"
    if args.suite == "fleet_scale":
        record = run_fleet_scale_bench(
            repeats=args.repeats, quick=args.quick
        )
        path = write_bench_json(record, out)
        print(f"wrote {path}")
        print("population  cohort  phase            s/round   "
              "peak alloc MB  RSS MB")
        for row in record["results"]:
            print(f"{row['population']:>10} {row['cohort']:>7}  "
                  f"{row['phase']:<15} {row['seconds']:>8.3f}  "
                  f"{row['peak_alloc_bytes'] / 1e6:>12.2f}  "
                  f"{row['peak_rss_bytes'] / 1e6:>6.1f}")
    elif args.suite == "candidate_selection":
        record = run_candidate_selection_bench(
            repeats=args.repeats, quick=args.quick
        )
        path = write_bench_json(record, out)
        print(f"wrote {path}")
        print("model           clients  pool  variant       "
              "   s/selection  identical")
        for row in record["results"]:
            print(f"{row['model']:<15} {row['clients']:>7} "
                  f"{row['pool_size']:>5}  {row['variant']:<14} "
                  f"{row['seconds']:>11.3f}  {row['outputs_identical']}")
    elif args.suite == "round_loop":
        record = run_round_loop_bench(
            repeats=args.repeats, quick=args.quick
        )
        path = write_bench_json(record, out)
        print(f"wrote {path}")
        print("model           clients  density  phase      variant "
              "    ms/round")
        for row in record["results"]:
            if "seconds" not in row:
                continue
            print(f"{row['model']:<15} {row['clients']:>7} "
                  f"{row['density']:>8.2f}  {row['phase']:<10} "
                  f"{row['variant']:<7} {row['seconds'] * 1e3:>9.3f}")
    else:
        record = run_sparse_compute_bench(
            repeats=args.repeats, quick=args.quick
        )
        path = write_bench_json(record, out)
        print(f"wrote {path}")
        print("shape                     density  variant            "
              "         ms/step")
        for row in record["results"]:
            print(f"{row['shape']:<25} {row['density']:>6.2f}  "
                  f"{row['variant']:<25} {row['seconds'] * 1e3:>8.3f}")
    print()
    acceptance = record["summary"]["acceptance"]
    for key, value in sorted(acceptance.items()):
        print(f"{key}: {value:.2f}x")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analyzer is pure stdlib and most CLI
    # invocations never need it.
    from .analysis import (
        linter, render_human, render_json, rule_summaries, run_lint,
    )

    if args.list_rules:
        summaries = rule_summaries()
        width = max(len(rule_id) for rule_id in summaries)
        for rule_id, summary in summaries.items():
            print(f"{rule_id:<{width}}  {summary}")
        return linter.EXIT_CLEAN
    try:
        result = run_lint(args.paths, rule_ids=args.rule)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return linter.EXIT_ERROR
    render = render_json if args.format == "json" else render_human
    print(render(result))
    return result.exit_code


def _render_plots(output) -> None:
    """ASCII charts for the figure experiments (no-op for tables)."""
    from .experiments import figures

    if output.experiment_id == "fig3":
        for dataset in output.data["series"]:
            print()
            print(figures.render_fig3(output, dataset))
    elif output.experiment_id == "fig4":
        print()
        print(figures.render_fig4(output))
    elif output.experiment_id == "fig5":
        accuracy_chart, comm_chart = figures.render_fig5(output)
        print()
        print(accuracy_chart)
        print()
        print(comm_chart)
    elif output.experiment_id == "fig6":
        print()
        print(figures.render_fig6(output))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "lint":
        return _command_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
