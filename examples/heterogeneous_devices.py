#!/usr/bin/env python3
"""Non-iid robustness: FedTiny vs server-side pruning as heterogeneity grows.

Reproduces the story of the paper's Fig. 6 as a runnable example: the
same task is partitioned across devices with decreasing Dirichlet alpha
(more heterogeneous), and server-side pruning (SynFlow) degrades faster
than FedTiny, whose adaptive BN selection sees every device's data
distribution through the aggregated BN statistics.

Usage::

    python examples/heterogeneous_devices.py
"""

from __future__ import annotations

from repro.experiments import get_scale, run_experiment


def main() -> None:
    scale = get_scale("tiny")
    density = 0.05
    alphas = [10.0, 0.5, 0.2]
    methods = ["synflow", "fedtiny"]

    print(f"density={density}, model=resnet18, dataset=cifar10-like")
    print(f"{'alpha':>8}  " + "  ".join(f"{m:>10}" for m in methods))
    for alpha in alphas:
        accuracies = []
        for method in methods:
            result = run_experiment(
                method,
                "resnet18",
                "cifar10",
                density,
                scale=scale,
                dirichlet_alpha=alpha,
                rounds=6,
                seed=0,
            )
            accuracies.append(result.final_accuracy)
        row = "  ".join(f"{a:>10.4f}" for a in accuracies)
        print(f"{alpha:>8.2f}  {row}")
    print("\nLower alpha = more heterogeneous devices.")


if __name__ == "__main__":
    main()
