#!/usr/bin/env python3
"""Using the FedTiny modules directly on a custom architecture.

Everything in ``repro.core`` works on any :class:`repro.nn.Module` —
this example defines a custom CNN, builds a candidate pool, runs
adaptive BN selection by hand, and drives progressive pruning from its
own round loop, printing the mask evolution. Use this as a template for
wiring FedTiny into your own model or training harness.

Usage::

    python examples/custom_model_pruning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveBNSelection, ProgressivePruner
from repro.data import svhn_like
from repro.fl import FederatedContext, FLConfig
from repro.fl.state import get_state
from repro.fl.training import server_pretrain
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.pruning import (
    PruningSchedule,
    even_blocks,
    generate_candidate_pool,
)


class TinyVGG(Module):
    """A custom four-conv architecture (not in the model zoo)."""

    def __init__(self, num_classes: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.body = Sequential(
            Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(16),
            ReLU(),
            Conv2d(16, 16, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(16),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(32),
            ReLU(),
            Conv2d(32, 32, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(32),
            ReLU(),
            GlobalAvgPool2d(),
        )
        self.head = Linear(32, num_classes, rng=rng)

    def forward(self, x):
        return self.head(self.body(x))

    def backward(self, grad):
        return self.body.backward(self.head.backward(grad))


def main() -> None:
    train, test = svhn_like(num_train=600, num_test=200, image_size=16)
    public, federated = train.split(0.15, np.random.default_rng(0))

    model = TinyVGG(num_classes=10, rng=np.random.default_rng(4))
    ctx = FederatedContext(
        model,
        federated,
        test,
        FLConfig(num_clients=5, rounds=10, local_epochs=1, batch_size=32,
                 lr=0.05, seed=0),
        dataset_name="svhn-like",
        model_name="tiny_vgg",
    )

    # Server-side: pretrain on the public split, then coarse-prune.
    server_pretrain(ctx.model, public, epochs=2, batch_size=32, lr=0.05)
    ctx.server.commit_state(get_state(ctx.model))
    target_density = 0.15
    pool = generate_candidate_pool(
        ctx.model, target_density, pool_size=5,
        rng=np.random.default_rng(11),
    )
    print(f"candidate pool: {len(pool)} structures, "
          f"densities {[round(c.density, 4) for c in pool]}")

    # Adaptive BN selection picks the least-biased candidate.
    chosen, report = AdaptiveBNSelection(batch_size=32).select(ctx, pool)
    print(f"selected candidate #{report.selected_index} "
          f"(losses: {[round(l, 3) for l in report.candidate_losses]})")
    ctx.install_masks(chosen.masks.copy())

    # Progressive pruning over a generic 3-block partition of the model.
    schedule = PruningSchedule(delta_rounds=2, stop_round=6,
                               granularity="block")
    pruner = ProgressivePruner(
        schedule, even_blocks(ctx.model, 3), grad_batch_size=32
    )

    for round_index in range(1, ctx.config.rounds + 1):
        states = ctx.run_fedavg_round()
        adjustment = pruner.maybe_adjust(ctx, round_index, states)
        accuracy, _ = ctx.evaluate_global()
        note = ""
        if adjustment is not None and adjustment.layer_counts:
            moved = adjustment.total_adjusted
            note = f"  [adjusted {moved} weights in " \
                   f"{len(adjustment.layer_counts)} layers]"
        print(f"round {round_index:2d}: acc={accuracy:.4f} "
              f"density={ctx.server.masks.density:.4f}{note}")

    print("\nfinal layer densities:")
    for name, density in ctx.server.masks.layer_densities().items():
        print(f"  {name:30s} {density:.4f}")


if __name__ == "__main__":
    main()
