#!/usr/bin/env python3
"""Quickstart: prune a federated ResNet-18 to 5% density with FedTiny.

Runs the full pipeline — server pretraining on a public one-shot
dataset, coarse-pruned candidate pool, adaptive BN selection, and
federated training with progressive pruning — at a small scale that
finishes in under a minute on a laptop CPU.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FedTiny, FedTinyConfig
from repro.data import cifar10_like
from repro.fl import FederatedContext, FLConfig
from repro.nn.models import build_model
from repro.pruning import PruningSchedule
from repro.sparse import bytes_to_mb


def main() -> None:
    # 1. Data: a CIFAR-10-like synthetic task. The server keeps a small
    #    public split (D_s); the rest is partitioned non-iid over devices.
    train, test = cifar10_like(num_train=800, num_test=240, image_size=16)
    public, federated = train.split(0.12, np.random.default_rng(7))

    # 2. The federated population: 6 devices, Dirichlet(0.5) partition.
    model = build_model("resnet18", num_classes=10, width_multiplier=0.25,
                        seed=1)
    ctx = FederatedContext(
        model,
        federated,
        test,
        FLConfig(num_clients=6, rounds=10, local_epochs=1, batch_size=32,
                 lr=0.05, dirichlet_alpha=0.5, seed=0),
        dataset_name="cifar10-like",
        model_name="resnet18",
    )

    # 3. FedTiny: target 5% density, pool of 6 coarse candidates,
    #    block-wise backward progressive pruning.
    config = FedTinyConfig(
        target_density=0.05,
        pool_size=6,
        schedule=PruningSchedule(delta_rounds=2, stop_round=6),
        pretrain_epochs=2,
    )
    result = FedTiny(config).run(ctx, public)

    # 4. Report.
    print(f"model parameters      : {model.num_parameters():,}")
    print(f"target density        : {config.target_density:.3f}")
    print(f"final density         : {result.final_density:.4f}")
    print(f"selected candidate    : #{result.metadata['selected_candidate']}"
          f" of {result.metadata['pool_size']}")
    print(f"final top-1 accuracy  : {result.final_accuracy:.4f}")
    print(f"device memory         : "
          f"{bytes_to_mb(result.memory_footprint_bytes):.2f} MB")
    print(f"max FLOPs per round   : "
          f"{result.max_training_flops_per_round:.3e}")
    print("accuracy per round    :",
          " ".join(f"{r.test_accuracy:.2f}" for r in result.rounds))


if __name__ == "__main__":
    main()
