#!/usr/bin/env python3
"""Deployment scenario: fit a model into a device memory budget.

The paper motivates FedTiny with memory- and compute-constrained
devices ("deployment scenarios"). This example inverts the workflow: a
fleet has a hard per-device training-memory budget; we search the
highest density whose on-device footprint (sparse parameters +
gradients + FedTiny's O(K) buffer) fits the budget, then run FedTiny at
that density and verify the footprint.

Usage::

    python examples/deployment_budget.py [budget_mb]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import FedTiny, FedTinyConfig
from repro.data import svhn_like
from repro.fl import FederatedContext, FLConfig
from repro.metrics import device_memory_footprint
from repro.nn.models import build_model
from repro.pruning import PruningSchedule, magnitude_mask_uniform
from repro.sparse import bytes_to_mb


def highest_density_within_budget(model, budget_mb: float) -> float:
    """Binary-search the densest mask whose footprint fits the budget."""
    low, high = 1e-4, 1.0
    best = low
    for _ in range(30):
        mid = (low + high) / 2.0
        masks = magnitude_mask_uniform(model, mid)
        footprint = device_memory_footprint(
            model, masks, topk_buffer_entries=int(0.3 * masks.num_active)
        )
        if bytes_to_mb(footprint.total_bytes) <= budget_mb:
            best = mid
            low = mid
        else:
            high = mid
    return best


def main() -> None:
    budget_mb = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25

    model = build_model("resnet18", num_classes=10, width_multiplier=0.25,
                        seed=3)
    dense_mb = bytes_to_mb(device_memory_footprint(model).total_bytes)
    density = highest_density_within_budget(model, budget_mb)
    print(f"dense training footprint : {dense_mb:.2f} MB")
    print(f"device budget            : {budget_mb:.2f} MB")
    print(f"chosen target density    : {density:.4f}")

    train, test = svhn_like(num_train=800, num_test=240, image_size=16)
    public, federated = train.split(0.12, np.random.default_rng(7))
    ctx = FederatedContext(
        model,
        federated,
        test,
        FLConfig(num_clients=6, rounds=8, local_epochs=1, batch_size=32,
                 lr=0.05, seed=0),
        dataset_name="svhn-like",
        model_name="resnet18",
    )
    config = FedTinyConfig(
        target_density=density,
        pool_size=6,
        schedule=PruningSchedule(delta_rounds=2, stop_round=6),
        pretrain_epochs=2,
    )
    result = FedTiny(config).run(ctx, public)

    footprint_mb = bytes_to_mb(result.memory_footprint_bytes)
    print(f"final top-1 accuracy     : {result.final_accuracy:.4f}")
    print(f"measured footprint       : {footprint_mb:.3f} MB "
          f"({'within' if footprint_mb <= budget_mb else 'OVER'} budget)")
    print(f"compression vs dense     : {dense_mb / footprint_mb:.1f}x")


if __name__ == "__main__":
    main()
