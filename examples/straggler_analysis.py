#!/usr/bin/env python3
"""Straggler analysis: in-loop simulated wall clock per pruning method.

The paper argues that methods needing dense on-device work (PruneFL's
full-gradient importance scores, LotteryFL's dense training) straggle
on heterogeneous fleets. Each run below executes with the simulation
layer enabled — every client carries a DeviceProfile from a 4x-spread
fleet and the round policy advances a simulated wall clock — so the
accuracy-vs-wall-clock comparison falls straight out of the
``RunResult`` instead of an offline projection.

Usage::

    python examples/straggler_analysis.py
"""

from __future__ import annotations

from repro.experiments import get_scale, run_experiment


def main() -> None:
    scale = get_scale("tiny")
    density = 0.05
    methods = ["fedtiny", "prunefl", "lotteryfl"]
    policies = [
        ("sync", {}),
        ("deadline", {"deadline_fraction": 1.0}),
    ]

    print(
        f"density={density}, fleet=heterogeneous:8 "
        f"({scale.num_clients} devices), rounds=5\n"
    )
    header = (
        f"{'method':>10}  {'policy':>9}  {'acc':>6}  "
        f"{'sim wall clock':>14}  {'dropped':>7}"
    )
    print(header)
    for method in methods:
        results = {}
        for policy, kwargs in policies:
            results[policy] = run_experiment(
                method, "resnet18", "cifar10", density,
                scale=scale, rounds=5, seed=0,
                fleet="heterogeneous:8", round_policy=policy, **kwargs,
            )
            result = results[policy]
            print(
                f"{method:>10}  {policy:>9}  "
                f"{result.final_accuracy:>6.3f}  "
                f"{result.sim_time_seconds:>13.2f}s  "
                f"{result.total_dropped_clients:>7d}"
            )
        # The per-round trajectory gives the accuracy-vs-wall-clock
        # curve directly: (simulated seconds, accuracy) pairs.
        curve = results["deadline"].wall_clock_curve()
        tail = ", ".join(f"({t:.1f}s, {a:.3f})" for t, a in curve[-2:])
        print(f"{'':>10}  deadline curve tail: {tail}")
    print(
        "\nSynchronous rounds pay the slowest device's compute+transfer"
        "\ntime; the deadline policy trades dropped stragglers for wall"
        "\nclock. Dense methods pay the straggler tax on every round."
    )


if __name__ == "__main__":
    main()
