#!/usr/bin/env python3
"""Straggler analysis: wall-clock round latency per pruning method.

The paper argues that methods needing dense on-device work (PruneFL's
full-gradient importance scores, LotteryFL's dense training) straggle
on heterogeneous fleets. This example runs each method briefly to
measure its per-round FLOPs and communication, then projects round
latency on a simulated fleet of phones with a 4x speed spread.

Usage::

    python examples/straggler_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import get_scale, run_experiment
from repro.fl import heterogeneous_fleet, round_latency, straggler_slowdown


def main() -> None:
    scale = get_scale("tiny")
    density = 0.05
    methods = ["fedtiny", "prunefl", "lotteryfl"]

    fleet = heterogeneous_fleet(
        num_devices=10,
        rng=np.random.default_rng(0),
        base_flops_per_second=5e9,       # mid-range phone
        base_bandwidth_bytes_per_second=1.25e6,  # ~10 Mbit/s uplink
        speed_spread=4.0,
    )

    print(f"density={density}, fleet=10 devices, 4x speed spread\n")
    header = (
        f"{'method':>10}  {'acc':>6}  {'FLOPs/round':>12}  "
        f"{'bytes/round':>12}  {'latency':>9}  {'straggle':>8}"
    )
    print(header)
    for method in methods:
        result = run_experiment(
            method, "resnet18", "cifar10", density,
            scale=scale, rounds=5, seed=0,
        )
        flops = result.max_training_flops_per_round
        # Per-device training traffic of one round (selection traffic is
        # a one-off and excluded here).
        round_bytes = (
            (result.total_upload_bytes + result.total_download_bytes)
            / max(1, len(result.rounds))
            / scale.num_clients
        )
        latency = round_latency(fleet, flops, round_bytes, round_bytes)
        slowdown = straggler_slowdown(fleet, flops, round_bytes, round_bytes)
        print(
            f"{method:>10}  {result.final_accuracy:>6.3f}  "
            f"{flops:>12.3e}  {round_bytes:>12.3e}  "
            f"{latency:>8.2f}s  {slowdown:>7.2f}x"
        )
    print(
        "\nLatency = slowest device's compute+transfer time for one "
        "round.\nDense methods pay the straggler tax on every round."
    )


if __name__ == "__main__":
    main()
